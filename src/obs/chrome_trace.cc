#include "obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "obs/trace_plane.h"
#include "util/types.h"

namespace exist::obs {
namespace {

constexpr int kRealPid = 1;
constexpr int kSimPidBase = 100;

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[320];
    va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                              sizeof(buf) - 1));
}

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        unsigned char c = static_cast<unsigned char>(*s);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(static_cast<char>(c));
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(static_cast<char>(c));
        }
    }
    return out;
}

std::string
category(const char *name)
{
    std::string cat;
    for (; name && *name && *name != '.'; ++name)
        cat.push_back(*name);
    return cat.empty() ? std::string("misc") : cat;
}

double
simUs(std::uint64_t cycles)
{
    return static_cast<double>(cycles) / static_cast<double>(kCyclesPerUs);
}

struct OutEvent {
    double ts;
    double dur = 0.0;
    long long pid;
    int tid;
    char ph;
    std::string name;
    std::string cat;
    std::uint64_t corr;
    std::uint64_t payload;
};

void
writeEvent(std::string &out, const OutEvent &ev, bool &first)
{
    appendf(out, "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                 "\"pid\":%lld,\"tid\":%d,\"ts\":%.3f",
            first ? "" : ",\n", ev.name.c_str(), ev.cat.c_str(), ev.ph,
            ev.pid, ev.tid, ev.ts);
    first = false;
    if (ev.ph == 'X')
        appendf(out, ",\"dur\":%.3f", ev.dur);
    if (ev.ph == 's' || ev.ph == 'f')
        appendf(out, ",\"id\":\"0x%" PRIx64 "\"", ev.corr);
    if (ev.ph == 'f')
        out += ",\"bp\":\"e\"";
    if (ev.ph == 'i')
        out += ",\"s\":\"t\"";
    appendf(out, ",\"args\":{\"corr\":\"0x%" PRIx64 "\",\"payload\":%" PRIu64
                 "}}",
            ev.corr, ev.payload);
}

void
writeMeta(std::string &out, bool &first, const char *what, long long pid,
          int tid, bool with_tid, const std::string &name)
{
    appendf(out, "%s{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%lld",
            first ? "" : ",\n", what, pid);
    first = false;
    if (with_tid)
        appendf(out, ",\"tid\":%d", tid);
    appendf(out, ",\"args\":{\"name\":\"%s\"}}", name.c_str());
}

}  // namespace

std::string
chromeTraceJson()
{
    auto threads = snapshot();

    std::uint64_t min_real = UINT64_MAX;
    for (const auto &t : threads)
        for (const auto &ev : t.events)
            if (ev.clock == Clock::kReal)
                min_real = std::min(min_real, ev.ts);
    if (min_real == UINT64_MAX)
        min_real = 0;

    std::vector<OutEvent> events;
    std::set<long long> sim_pids;
    std::map<std::pair<long long, int>, std::string> tid_names;

    for (const auto &t : threads) {
        // Per-thread B/E balance fix-up: drop ends with no open begin
        // (their begin was overwritten by ring wrap) and close leftover
        // begins at the thread's final timestamp.
        std::vector<std::size_t> open;
        double last_real_us = 0.0;
        for (const auto &raw : t.events) {
            if (!raw.name)
                continue;
            OutEvent ev;
            ev.name = jsonEscape(raw.name);
            ev.cat = category(raw.name);
            ev.corr = raw.corr;
            ev.tid = t.ring;
            if (raw.clock == Clock::kReal) {
                ev.pid = kRealPid;
                ev.ts = static_cast<double>(raw.ts - std::min(raw.ts,
                                                              min_real)) /
                        1000.0;
                ev.payload = raw.arg;
                last_real_us = std::max(last_real_us, ev.ts);
            } else {
                ev.pid = kSimPidBase +
                         static_cast<long long>(raw.arg & 0xffff);
                ev.ts = simUs(raw.ts);
                ev.payload = raw.arg >> 16;
                sim_pids.insert(ev.pid);
                tid_names[{ev.pid, ev.tid}] = t.name;
            }
            switch (raw.kind) {
              case Kind::kBegin:
                ev.ph = 'B';
                open.push_back(events.size());
                break;
              case Kind::kEnd:
                if (open.empty())
                    continue;  // begin lost to ring wrap
                open.pop_back();
                ev.ph = 'E';
                break;
              case Kind::kInstant:
                ev.ph = 'i';
                break;
              case Kind::kFlowBegin:
                ev.ph = 's';
                break;
              case Kind::kFlowEnd:
                ev.ph = 'f';
                break;
              case Kind::kSimSpan:
                ev.ph = 'X';
                ev.dur = simUs(ev.payload);
                break;
            }
            if (raw.clock == Clock::kReal)
                tid_names[{kRealPid, ev.tid}] = t.name;
            events.push_back(std::move(ev));
        }
        // Close any spans the dump caught mid-flight.
        while (!open.empty()) {
            const OutEvent &b = events[open.back()];
            open.pop_back();
            OutEvent e;
            e.ph = 'E';
            e.name = b.name;
            e.cat = b.cat;
            e.corr = b.corr;
            e.payload = 0;
            e.pid = b.pid;
            e.tid = b.tid;
            e.ts = std::max(b.ts, last_real_us);
            events.push_back(std::move(e));
        }
    }

    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
    appendf(out, "\"events_recorded\":%" PRIu64 ",\"threads\":%" PRIu64
                 ",\"threads_dropped\":%" PRIu64 "},\n",
            eventsRecorded(), threadsRegistered(), threadsDropped());
    out += "\"traceEvents\":[\n";
    bool first = true;
    writeMeta(out, first, "process_name", kRealPid, 0, false, "exist");
    for (long long pid : sim_pids) {
        char name[48];
        if (pid - kSimPidBase == 0xffff)  // collector/master sentinel
            std::snprintf(name, sizeof(name), "sim master");
        else
            std::snprintf(name, sizeof(name), "sim node %lld",
                          pid - kSimPidBase);
        writeMeta(out, first, "process_name", pid, 0, false, name);
    }
    for (const auto &[key, name] : tid_names)
        writeMeta(out, first, "thread_name", key.first, key.second, true,
                  jsonEscape(name.c_str()));
    for (const auto &ev : events)
        writeEvent(out, ev, first);
    out += "\n]}\n";
    return out;
}

}  // namespace exist::obs
