/**
 * @file
 * Self-observability plane: always-on, lock-free internal span tracing.
 *
 * Every thread that emits an event owns a bounded SPSC ring of 32-byte
 * slots; the emit path performs four relaxed atomic word stores plus one
 * release store of the write cursor and never takes a lock, allocates,
 * or blocks — it is safe from event-loop callbacks, CommitLog actions,
 * and decode hot loops (exist-analyzer proves the no-blocking property,
 * see tools/analyzer/checks/event_block.py).  Collectors (flight-dump,
 * Chrome-trace export, tests) snapshot rings from the outside under the
 * kObs-ranked dump mutex; a concurrent writer can at worst overwrite
 * the oldest slots mid-copy, which the snapshot detects by re-reading
 * the cursor and trimming the possibly-torn prefix.
 *
 * Two clock domains share the same event format, discriminated by
 * Clock: kReal events carry steady-clock nanoseconds (decode, pool,
 * reconcile, WAL work); kSim events carry EventQueue virtual cycles
 * (fabric hops, agent batches, ingest) plus the emitting sim node id in
 * the low 16 bits of `arg`, so the exporter can group them per node.
 *
 * Correlation ids are minted with corrId() — a splitmix64 chain over
 * caller-supplied keys — so sim-side ids derive only from deterministic
 * quantities (seed, node, stream, seq) and are stable across runs of
 * the same seed.  The plane is write-only telemetry: nothing in
 * report-producing code may read it back (determinism-lint rule
 * `obs-read-back`), so report bytes are identical with spans on or off.
 */
#ifndef EXIST_OBS_TRACE_PLANE_H
#define EXIST_OBS_TRACE_PLANE_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/types.h"

namespace exist::obs {

/** Event kinds, mapped onto Chrome trace-event phases at export time. */
enum class Kind : std::uint8_t {
    kBegin = 0,   ///< span open (Chrome "B"); paired with kEnd on same thread
    kEnd = 1,     ///< span close (Chrome "E")
    kInstant = 2, ///< point event (Chrome "i")
    kFlowBegin = 3, ///< cross-thread link source (Chrome "s")
    kFlowEnd = 4,   ///< cross-thread link sink (Chrome "f")
    kSimSpan = 5,   ///< complete sim-clock span: ts=start, arg carries dur
};

/** Clock domain an event's timestamp belongs to. */
enum class Clock : std::uint8_t {
    kReal = 0, ///< steady-clock nanoseconds since an arbitrary epoch
    kSim = 1,  ///< EventQueue virtual cycles (250 cycles/us)
};

/** Whether emission is recording (always-on unless EXIST_OBS=off). */
bool enabled();

/** Toggle recording at runtime (bench + determinism tests use this). */
void setEnabled(bool on);

/** Deterministic correlation id: splitmix64 chain over up to 3 keys. */
std::uint64_t corrId(std::uint64_t a, std::uint64_t b = 0,
                     std::uint64_t c = 0);

/** Steady-clock nanoseconds (the kReal timestamp source). */
std::uint64_t realNowNs();

/** Name the calling thread's ring (shows up as Perfetto thread name).
 *  Truncated to 31 bytes; safe to call repeatedly. */
void setThreadName(const char *name);

// -- emit API (kReal domain) -----------------------------------------
// `name` must point at static-storage text (string literals); only the
// pointer is recorded.  All emitters are no-ops when disabled.
void begin(const char *name, std::uint64_t corr);
void end(const char *name, std::uint64_t corr);
void instant(const char *name, std::uint64_t corr, std::uint64_t payload = 0);
void flowBegin(const char *name, std::uint64_t corr);
void flowEnd(const char *name, std::uint64_t corr);

// -- emit API (kSim domain) ------------------------------------------
// `now`/`start` are EventQueue virtual cycles; `node` is the sim node
// id (low 16 bits kept) used as the Perfetto process of the event.
void simInstant(const char *name, std::uint64_t corr, Cycles now,
                std::uint32_t node, std::uint32_t payload = 0);
void simSpan(const char *name, std::uint64_t corr, Cycles start, Cycles dur,
             std::uint32_t node);
void simFlowBegin(const char *name, std::uint64_t corr, Cycles now,
                  std::uint32_t node);
void simFlowEnd(const char *name, std::uint64_t corr, Cycles now,
                std::uint32_t node);

/** RAII real-clock span: records kBegin on construction, kEnd on
 *  destruction (same thread, so begin/end nest by construction). */
class Span {
  public:
    Span(const char *name, std::uint64_t corr) : name_(name), corr_(corr)
    {
        begin(name_, corr_);
    }
    ~Span() { end(name_, corr_); }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    std::uint64_t corr_;
};

#define EXIST_OBS_CONCAT2(a, b) a##b
#define EXIST_OBS_CONCAT(a, b) EXIST_OBS_CONCAT2(a, b)

/** Open a real-clock span for the rest of the enclosing scope. */
#define EXIST_SPAN(name, corr) \
    ::exist::obs::Span EXIST_OBS_CONCAT(exist_span_, __COUNTER__)((name), \
                                                                  (corr))

/** Record a real-clock point event. */
#define EXIST_INSTANT(name, corr) ::exist::obs::instant((name), (corr))

// -- collector / read side -------------------------------------------
// Reading is for telemetry surfaces only (existctl, flight dumps,
// tests, bench) — never for report-producing code paths.

/** One decoded event, as captured by snapshot(). */
struct EventView {
    std::uint64_t ts;   ///< ns (kReal) or cycles (kSim)
    const char *name;   ///< static-storage event name
    std::uint64_t corr; ///< correlation id
    Kind kind;
    Clock clock;
    std::uint64_t arg;  ///< payload; sim events keep node in low 16 bits
};

/** All surviving events of one thread's ring, oldest first. */
struct ThreadSnapshot {
    int ring;            ///< stable ring index (Perfetto tid)
    std::string name;    ///< thread name at snapshot time
    std::uint64_t total; ///< events ever recorded into this ring
    std::vector<EventView> events;
};

/** Copy every registered ring (kObs dump lock serializes collectors). */
std::vector<ThreadSnapshot> snapshot();

/** Total events recorded across all rings (approximate, monotonic). */
std::uint64_t eventsRecorded();

/** Number of per-thread rings ever registered. */
std::uint64_t threadsRegistered();

/** Events discarded because the thread-ring table was full. */
std::uint64_t threadsDropped();

}  // namespace exist::obs

#endif  // EXIST_OBS_TRACE_PLANE_H
