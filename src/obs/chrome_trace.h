/**
 * @file
 * Chrome trace-event JSON export of the tracing rings, loadable by
 * Perfetto (ui.perfetto.dev) and chrome://tracing.
 *
 * Mapping:
 *  - real-clock events: pid 1 ("exist"), tid = ring index, ts =
 *    microseconds since the earliest real event in the snapshot;
 *  - sim-clock events: pid = 100 + sim node id ("sim node N"), tid =
 *    emitting ring, ts = virtual microseconds (cycles / 250);
 *  - kBegin/kEnd → "B"/"E" (unmatched ends dropped, unclosed begins
 *    closed at the ring's last timestamp so the JSON always balances);
 *  - kSimSpan → a complete "X" event carrying its duration;
 *  - flow links → "s"/"f" pairs bound by correlation id;
 *  - the category of every event is its name up to the first '.'.
 *
 * The exporter never writes files itself — callers (existctl, bench,
 * tests) own the output path, keeping all file IO out of src/obs.
 */
#ifndef EXIST_OBS_CHROME_TRACE_H
#define EXIST_OBS_CHROME_TRACE_H

#include <string>

namespace exist::obs {

/** Serialize a snapshot of all rings as Chrome trace-event JSON. */
std::string chromeTraceJson();

}  // namespace exist::obs

#endif  // EXIST_OBS_CHROME_TRACE_H
