/**
 * @file
 * FlightRecorder: the last-N-events-per-thread view of the tracing
 * rings, rendered as text for crash forensics.  There is no separate
 * recording machinery — the per-thread rings of trace_plane.h *are*
 * the flight recorder; this module only formats their tails.
 *
 * Dumps fire from three places: fatal/panic termination
 * (util/logging.cc invokes the hook installed by the plane), the
 * durability crash-point default handler (same hook, before _Exit),
 * and `existctl dump-flight` for on-demand inspection.
 */
#ifndef EXIST_OBS_FLIGHT_RECORDER_H
#define EXIST_OBS_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdio>
#include <string>

namespace exist::obs {

/** Render the last `last_n` events of every thread ring as text. */
std::string flightDumpText(std::size_t last_n = 64);

/** Write flightDumpText() to `out` (crash paths pass stderr). */
void flightDumpTo(std::FILE *out, std::size_t last_n = 64);

}  // namespace exist::obs

#endif  // EXIST_OBS_FLIGHT_RECORDER_H
