/**
 * @file
 * Request-driven service runtime on top of the kernel: worker threads
 * pull requests from a queue, execute a stochastic service demand
 * through the program model, optionally issue synchronous RPCs to a
 * downstream service, and reply. This is the substrate for the online
 * benchmarks (mc/ng/ms), the cloud applications (Search/Cache/Pred/
 * Agent) and the DeathStarBench-like chains of Figures 3b and 16.
 */
#ifndef EXIST_OS_SERVICE_H
#define EXIST_OS_SERVICE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "os/kernel.h"
#include "os/task.h"
#include "util/rng.h"
#include "util/types.h"

namespace exist {

/** Completion callback: invoked with the completion time. */
using RequestDone = std::function<void(Cycles)>;

class Service : public ThreadDriver
{
  public:
    /**
     * Create a service around an existing process. Demand parameters
     * come from the process's application profile.
     */
    Service(Kernel *kernel, Process *proc, std::uint64_t seed);
    ~Service() override;

    /** Spawn n worker threads driven by this service. */
    void spawnWorkers(int n);

    /** Wire a downstream dependency; each request issues
     *  profile().downstream_rpcs sequential RPCs to it (or the value
     *  set by setRpcsPerRequest). */
    void setDownstream(Service *s) { downstream_ = s; }

    /** Override the per-request RPC count (-1 = profile default).
     *  Lets one profile play different roles in different chains. */
    void setRpcsPerRequest(int n) { rpcs_override_ = n; }

    /** Enqueue one request. */
    void submit(Cycles now, RequestDone done);

    // ThreadDriver:
    bool onWorkExhausted(Thread &t, Cycles now) override;

    Process &process() { return *proc_; }
    const std::vector<Thread *> &workers() const { return workers_; }
    std::uint64_t completedCount() const { return completed_; }
    std::size_t queueDepth() const { return pending_.size(); }

  private:
    struct Job {
        RequestDone done;
        int rpcs_left = 0;
    };

    double drawDemand();
    void attach(Thread *w, std::unique_ptr<Job> job, Cycles now);
    void onRpcResponse(Thread *w, Cycles now);
    void finish(Thread *w, Job &job, Cycles now);

    Kernel *kernel_;
    Process *proc_;
    Rng rng_;
    double demand_mu_ = 0.0;
    double demand_sigma_ = 0.0;
    Service *downstream_ = nullptr;
    int rpcs_override_ = -1;

    std::deque<std::unique_ptr<Job>> pending_;
    std::unordered_map<ThreadId, std::unique_ptr<Job>> active_;
    std::vector<Thread *> workers_;
    std::deque<Thread *> idle_;
    std::uint64_t completed_ = 0;
};

}  // namespace exist

#endif  // EXIST_OS_SERVICE_H
