/**
 * @file
 * The node OS model: cores with per-core hardware tracers, a preemptive
 * affinity-aware scheduler, syscalls, tracepoints with injectable hooks
 * (the mechanism EXIST's kernel hooker uses), high-resolution timers,
 * and the per-task accounting the evaluation reads out.
 *
 * Execution is block-granular: a core runs its current thread's
 * ExecutionContext in bounded slices between event-queue visits, so
 * virtual time on every core stays within costs::kMaxSlice of the
 * global clock while block events (and thus trace packets) retain exact
 * per-branch fidelity.
 */
#ifndef EXIST_OS_KERNEL_H
#define EXIST_OS_KERNEL_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hwtrace/tracer.h"
#include "os/costs.h"
#include "os/task.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/types.h"

namespace exist {

/** Static description of a node's hardware. */
struct NodeConfig {
    int num_cores = 8;
    /** When true, cores (2i, 2i+1) are SMT siblings on one physical
     *  core and pay smt_sensitivity when both are busy. */
    bool smt = false;
    /** Host memory capacity (for allocation accounting, Fig. 11). */
    std::uint64_t memory_mb = 384ull * 1024;
    std::uint64_t seed = 1;
};

/**
 * One record of the sched_switch side-channel log EXIST keeps to
 * re-associate per-core traces with threads (paper §3.3): the 24-byte
 * five-tuple [Timestamp, CPUID, ProcessID, ThreadID, Operation].
 */
struct SwitchRecord {
    std::uint64_t timestamp;
    std::int32_t cpu;
    std::int32_t pid;
    std::int32_t tid;
    std::uint32_t op;  ///< 1 = scheduled in, 0 = scheduled out
};
static_assert(sizeof(SwitchRecord) == 24, "five-tuple must be 24 bytes");

/** Observer of every retired user-level branch (ground-truth capture). */
class BranchObserver
{
  public:
    virtual ~BranchObserver() = default;
    virtual void onBranch(CoreId core, const Thread &t,
                          const BranchRecord &rec, Cycles now) = 0;
};

/** Hook injected at the sched_switch tracepoint. Returns its cost. */
using SchedSwitchHook =
    std::function<Cycles(Cycles now, CoreId core, Thread *prev,
                         Thread *next)>;

/** Hook invoked at syscall entry (eBPF sys_enter). Returns its cost. */
using SyscallHook = std::function<Cycles(Cycles now, CoreId core,
                                         Thread &t)>;

/** Handler for tracer aux-buffer PMIs. Returns the handling cost. */
using PmiHandler = std::function<Cycles(CoreId core, Cycles now)>;

/** Periodic per-core interrupt source (statistical samplers). */
struct InterruptSource {
    Cycles period;
    Cycles cost;
    std::function<void(CoreId, Thread *)> handler;
};

class Kernel
{
  public:
    explicit Kernel(const NodeConfig &cfg);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // --- Time & simulation control --------------------------------------
    EventQueue &queue() { return queue_; }
    Cycles now() const { return queue_.now(); }
    /** Advance the simulation by `duration`. */
    void runFor(Cycles duration);
    /** Advance the simulation to absolute time `when`. */
    void runUntil(Cycles when);

    // --- Topology --------------------------------------------------------
    int numCores() const { return static_cast<int>(cores_.size()); }
    CoreTracer &tracer(CoreId c) { return *cores_[c].tracer; }
    const NodeConfig &config() const { return cfg_; }

    // --- Task management -------------------------------------------------
    Process *createProcess(const std::string &name,
                           std::shared_ptr<const ProgramBinary> binary,
                           std::vector<CoreId> allowed_cores);
    /** Create a thread; it starts blocked until startThread(). */
    Thread *createThread(Process *proc, ThreadDriver *driver);
    /** Make a thread runnable now. */
    void startThread(Thread *t);
    /** Wake a blocked thread (service request arrival, I/O done). */
    void wakeThread(Thread *t);

    const std::vector<std::unique_ptr<Process>> &processes() const
    {
        return processes_;
    }
    Process *findProcess(const std::string &name) const;

    // --- Tracepoints & instrumentation ------------------------------------
    int addSchedSwitchHook(SchedSwitchHook hook);
    void removeSchedSwitchHook(int id);
    int addSyscallHook(SyscallHook hook);
    void removeSyscallHook(int id);
    void setPmiHandler(PmiHandler h) { pmi_handler_ = std::move(h); }
    void setBranchObserver(BranchObserver *o) { branch_observer_ = o; }

    int addInterruptSource(const InterruptSource &src);
    void removeInterruptSource(int id);

    /** Record the five-tuple switch log (pid filter; -1 = all). */
    void armSwitchLog(ProcessId pid_filter);
    void disarmSwitchLog();
    const std::vector<SwitchRecord> &switchLog() const
    {
        return switch_log_;
    }
    std::vector<SwitchRecord> takeSwitchLog();

    /** One-shot timer (EXIST's HRT bounding the tracing period). */
    void setTimer(Cycles when, std::function<void()> fn);

    // --- Accounting --------------------------------------------------------
    /** Busy cycles accumulated by a core since construction. */
    Cycles coreBusyCycles(CoreId c) const { return cores_[c].busy; }
    /** Kernel cycles (switch/syscall/interrupt overhead) per core. */
    Cycles coreKernelCycles(CoreId c) const
    {
        return cores_[c].kernel_cycles;
    }
    int busyCoreCount() const { return busy_cores_; }
    /** Whether a thread of `pid` is currently running on core c. */
    Thread *runningOn(CoreId c) const { return cores_[c].current; }

    /** Node-wide counters aggregated over live threads. */
    TaskCounters aggregateCounters() const;

    std::uint64_t totalContextSwitches() const { return total_switches_; }

  private:
    struct Core {
        CoreId id = 0;
        Thread *current = nullptr;
        std::unique_ptr<CoreTracer> tracer;
        std::deque<Thread *> runq;
        Cycles quantum_end = 0;
        Cycles busy = 0;
        Cycles kernel_cycles = 0;
        Cycles pending_interrupt = 0;
        bool run_scheduled = false;
        /** Local time cursor (>= queue time while a slice runs). */
        Cycles cursor = 0;
        Cycles last_switch_in = 0;
    };

    void scheduleRun(CoreId c, Cycles when);
    void runCore(CoreId c);
    void dispatch(Core &core, Cycles now);
    void contextSwitch(Core &core, Thread *next, Cycles now);
    void enqueue(Thread *t);
    CoreId pickCoreFor(Thread *t) const;
    double effectiveCpi(const Core &core, const Thread &t) const;
    /** Returns true when the syscall blocked the thread. */
    bool handleSyscallInternal(Core &core, Thread &t, Cycles &cursor);
    void recordSwitch(Cycles now, CoreId cpu, Thread *t, bool in);
    void armInterruptTick(int id, CoreId core);
    int writeBackTracersActive() const;

    NodeConfig cfg_;
    EventQueue queue_;
    Rng rng_;
    std::vector<Core> cores_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<Thread>> threads_;
    ComputeDriver compute_driver_;

    std::map<int, SchedSwitchHook> switch_hooks_;
    std::map<int, SyscallHook> syscall_hooks_;
    std::map<int, InterruptSource> interrupt_sources_;
    int next_hook_id_ = 1;
    PmiHandler pmi_handler_;
    BranchObserver *branch_observer_ = nullptr;

    bool switch_log_armed_ = false;
    ProcessId switch_log_filter_ = kInvalidId;
    std::vector<SwitchRecord> switch_log_;

    int busy_cores_ = 0;
    std::uint64_t total_switches_ = 0;
    int next_pid_ = 1;
    int next_tid_ = 100;

    friend class KernelTestPeer;
};

}  // namespace exist

#endif  // EXIST_OS_KERNEL_H
