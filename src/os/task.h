/**
 * @file
 * Processes and threads of the node OS model.
 *
 * A Process owns a generated binary, a CR3 value (what the hardware
 * CR3 filter matches on) and a core-affinity that encodes its pod's
 * provisioning mode. A Thread walks the binary through an
 * ExecutionContext and carries all per-task accounting the evaluation
 * reads out (cycles, instructions, switches, hardware events).
 */
#ifndef EXIST_OS_TASK_H
#define EXIST_OS_TASK_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"
#include "workload/app_profile.h"
#include "workload/execution.h"
#include "workload/program.h"

namespace exist {

class Thread;

/** Per-thread hardware/software event accounting (paper Fig. 4). */
struct TaskCounters {
    std::uint64_t insns = 0;
    std::uint64_t user_cycles = 0;
    std::uint64_t kernel_cycles = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t migrations = 0;
    std::uint64_t syscalls = 0;
    double branch_misses = 0;
    double l1_misses = 0;
    double llc_misses = 0;

    void
    accumulate(const TaskCounters &o)
    {
        insns += o.insns;
        user_cycles += o.user_cycles;
        kernel_cycles += o.kernel_cycles;
        context_switches += o.context_switches;
        migrations += o.migrations;
        syscalls += o.syscalls;
        branch_misses += o.branch_misses;
        l1_misses += o.l1_misses;
        llc_misses += o.llc_misses;
    }
};

/** A process: binary + address space identity + affinity. */
class Process
{
  public:
    Process(ProcessId pid, std::string name,
            std::shared_ptr<const ProgramBinary> binary,
            std::vector<CoreId> allowed_cores)
        : pid_(pid), name_(std::move(name)), binary_(std::move(binary)),
          allowed_cores_(std::move(allowed_cores))
    {
    }

    ProcessId pid() const { return pid_; }
    const std::string &name() const { return name_; }
    /** CR3 is derived from the pid; unique per address space. */
    std::uint64_t cr3() const
    {
        return 0x1000000ull + static_cast<std::uint64_t>(pid_) * 0x2000;
    }
    const ProgramBinary &binary() const { return *binary_; }
    std::shared_ptr<const ProgramBinary> binaryRef() const
    {
        return binary_;
    }
    const AppProfile &profile() const { return binary_->profile(); }
    const std::vector<CoreId> &allowedCores() const
    {
        return allowed_cores_;
    }

    const std::vector<Thread *> &threads() const { return threads_; }
    void addThread(Thread *t) { threads_.push_back(t); }

  private:
    ProcessId pid_;
    std::string name_;
    std::shared_ptr<const ProgramBinary> binary_;
    std::vector<CoreId> allowed_cores_;
    std::vector<Thread *> threads_;
};

/** Scheduling state of a thread. */
enum class ThreadState : std::uint8_t {
    kReady,
    kRunning,
    kBlocked,
};

/**
 * Supplies work to a thread and reacts to its completion. Compute
 * workloads refill forever; service workloads assign per-request work
 * and block the thread when the queue is empty.
 */
class ThreadDriver
{
  public:
    virtual ~ThreadDriver() = default;

    /**
     * The thread exhausted its assigned work at `now`. Return true if
     * new work was assigned (thread keeps running); false to block it.
     */
    virtual bool onWorkExhausted(Thread &t, Cycles now) = 0;
};

/** Driver for always-runnable compute workloads. */
class ComputeDriver final : public ThreadDriver
{
  public:
    bool
    onWorkExhausted(Thread &t, Cycles now) override;
};

/** A kernel-schedulable thread. */
class Thread
{
  public:
    Thread(ThreadId tid, Process *proc, std::uint64_t seed)
        : tid_(tid), proc_(proc), exec_(&proc->binary(), seed),
          rng_(seed ^ 0x517cc1b727220a95ULL)
    {
        proc->addThread(this);
    }

    ThreadId tid() const { return tid_; }
    Process &process() { return *proc_; }
    const Process &process() const { return *proc_; }
    ExecutionContext &exec() { return exec_; }
    Rng &rng() { return rng_; }

    ThreadState state() const { return state_; }
    void setState(ThreadState s) { state_ = s; }

    CoreId lastCore() const { return last_core_; }
    void setLastCore(CoreId c) { last_core_ = c; }

    /** Remaining assigned work in instructions; <0 means unassigned. */
    double workRemaining() const { return work_remaining_; }
    void assignWork(double insns) { work_remaining_ = insns; }
    void
    consumeWork(double insns)
    {
        work_remaining_ -= insns;
    }

    ThreadDriver *driver() const { return driver_; }
    void setDriver(ThreadDriver *d) { driver_ = d; }

    TaskCounters &counters() { return counters_; }
    const TaskCounters &counters() const { return counters_; }

    /** Address of the instruction the thread will execute next. */
    std::uint64_t
    currentAddress() const
    {
        return proc_->binary().block(exec_.currentBlock()).address;
    }

    /** Function the thread is currently executing (for samplers). */
    std::uint32_t
    currentFunctionId() const
    {
        return proc_->binary().block(exec_.currentBlock()).function_id;
    }

    /** Total observed CPI so far (user time only). */
    double
    cpi() const
    {
        return counters_.insns
                   ? static_cast<double>(counters_.user_cycles) /
                         static_cast<double>(counters_.insns)
                   : 0.0;
    }

  private:
    ThreadId tid_;
    Process *proc_;
    ExecutionContext exec_;
    Rng rng_;
    ThreadState state_ = ThreadState::kReady;
    CoreId last_core_ = kInvalidId;
    double work_remaining_ = -1.0;
    ThreadDriver *driver_ = nullptr;
    TaskCounters counters_;
};

}  // namespace exist

#endif  // EXIST_OS_TASK_H
