/**
 * @file
 * Load generators driving services: an open-loop Poisson generator
 * (memtier/ab/sysbench stand-in) measuring end-to-end response times,
 * and a periodic generator for daemon-style workloads (Agent).
 */
#ifndef EXIST_OS_LOADGEN_H
#define EXIST_OS_LOADGEN_H

#include <cstdint>

#include "os/kernel.h"
#include "os/service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"

namespace exist {

/** Open-loop Poisson request generator. */
class PoissonLoadGen
{
  public:
    PoissonLoadGen(Kernel *kernel, Service *target,
                   double requests_per_second, std::uint64_t seed);

    /** Begin generating; runs until stop() or simulation end. */
    void start();
    void stop() { running_ = false; }

    /** Ignore completions before this absolute time (warm-up). */
    void setWarmupUntil(Cycles t) { warmup_until_ = t; }

    /** End-to-end latency samples in microseconds. */
    const Samples &latencies() const { return latencies_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }

  private:
    void scheduleNext();

    Kernel *kernel_;
    Service *target_;
    double rps_;
    Rng rng_;
    bool running_ = false;
    Cycles warmup_until_ = 0;
    Samples latencies_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
};

/**
 * Closed-loop generator: N concurrent clients, each submitting its next
 * request as soon as the previous one completes (plus an optional think
 * time). This is how memtier/ab/sysbench drive their targets, and it is
 * what makes *throughput* sensitive to service-time inflation — the
 * metric of paper Figure 14.
 */
class ClosedLoopLoadGen
{
  public:
    ClosedLoopLoadGen(Kernel *kernel, Service *target, int clients,
                      std::uint64_t seed, Cycles think_time = 0);

    void start();
    void stop() { running_ = false; }

    void setWarmupUntil(Cycles t) { warmup_until_ = t; }

    const Samples &latencies() const { return latencies_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }

  private:
    void submitOne();

    Kernel *kernel_;
    Service *target_;
    int clients_;
    Rng rng_;
    Cycles think_time_;
    bool running_ = false;
    Cycles warmup_until_ = 0;
    Samples latencies_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
};

/** Fixed-interval generator (periodic daemons, stress pulses). */
class PeriodicLoadGen
{
  public:
    PeriodicLoadGen(Kernel *kernel, Service *target, Cycles period)
        : kernel_(kernel), target_(target), period_(period)
    {
    }

    void start();
    void stop() { running_ = false; }

    std::uint64_t issued() const { return issued_; }

  private:
    void tick();

    Kernel *kernel_;
    Service *target_;
    Cycles period_;
    bool running_ = false;
    std::uint64_t issued_ = 0;
};

}  // namespace exist

#endif  // EXIST_OS_LOADGEN_H
