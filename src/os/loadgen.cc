#include "os/loadgen.h"

#include <algorithm>

namespace exist {

PoissonLoadGen::PoissonLoadGen(Kernel *kernel, Service *target,
                               double requests_per_second,
                               std::uint64_t seed)
    : kernel_(kernel), target_(target), rps_(requests_per_second),
      rng_(seed)
{
}

void
PoissonLoadGen::start()
{
    running_ = true;
    scheduleNext();
}

void
PoissonLoadGen::scheduleNext()
{
    if (!running_)
        return;
    double gap_s = rng_.exponential(1.0 / rps_);
    kernel_->queue().scheduleAfter(secondsToCycles(gap_s), [this] {
        if (!running_)
            return;
        Cycles submitted = kernel_->now();
        ++issued_;
        target_->submit(submitted, [this, submitted](Cycles done) {
            ++completed_;
            if (submitted >= warmup_until_) {
                latencies_.add(static_cast<double>(done - submitted) /
                               static_cast<double>(kCyclesPerUs));
            }
        });
        scheduleNext();
    });
}

ClosedLoopLoadGen::ClosedLoopLoadGen(Kernel *kernel, Service *target,
                                     int clients, std::uint64_t seed,
                                     Cycles think_time)
    : kernel_(kernel), target_(target), clients_(clients), rng_(seed),
      think_time_(think_time)
{
}

void
ClosedLoopLoadGen::start()
{
    running_ = true;
    for (int i = 0; i < clients_; ++i) {
        // Stagger client starts slightly to avoid a synchronized burst.
        kernel_->queue().scheduleAfter(
            usToCycles(rng_.uniform(0.0, 50.0)), [this] { submitOne(); });
    }
}

void
ClosedLoopLoadGen::submitOne()
{
    if (!running_)
        return;
    Cycles submitted = kernel_->now();
    ++issued_;
    target_->submit(submitted, [this, submitted](Cycles done) {
        ++completed_;
        if (submitted >= warmup_until_) {
            latencies_.add(static_cast<double>(done - submitted) /
                           static_cast<double>(kCyclesPerUs));
        }
        Cycles delay = think_time_;
        if (delay > 0)
            kernel_->queue().schedule(done + delay,
                                      [this] { submitOne(); });
        else
            kernel_->queue().schedule(std::max(done, kernel_->now()),
                                      [this] { submitOne(); });
    });
}

void
PeriodicLoadGen::start()
{
    running_ = true;
    tick();
}

void
PeriodicLoadGen::tick()
{
    if (!running_)
        return;
    kernel_->queue().scheduleAfter(period_, [this] {
        if (!running_)
            return;
        ++issued_;
        target_->submit(kernel_->now(), nullptr);
        tick();
    });
}

}  // namespace exist
