#include "os/kernel.h"

#include <algorithm>

#include "util/logging.h"

namespace exist {

bool
ComputeDriver::onWorkExhausted(Thread &t, Cycles)
{
    // Compute workloads never run out of work.
    t.assignWork(1e15);
    return true;
}

Kernel::Kernel(const NodeConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
    EXIST_ASSERT(cfg.num_cores > 0, "node needs at least one core");
    cores_.resize(static_cast<std::size_t>(cfg.num_cores));
    for (int c = 0; c < cfg.num_cores; ++c) {
        cores_[static_cast<std::size_t>(c)].id = c;
        cores_[static_cast<std::size_t>(c)].tracer =
            std::make_unique<CoreTracer>(c);
    }
}

Kernel::~Kernel() = default;

void
Kernel::runFor(Cycles duration)
{
    queue_.runUntil(queue_.now() + duration);
}

void
Kernel::runUntil(Cycles when)
{
    queue_.runUntil(when);
}

Process *
Kernel::createProcess(const std::string &name,
                      std::shared_ptr<const ProgramBinary> binary,
                      std::vector<CoreId> allowed_cores)
{
    if (allowed_cores.empty()) {
        allowed_cores.resize(static_cast<std::size_t>(numCores()));
        for (int c = 0; c < numCores(); ++c)
            allowed_cores[static_cast<std::size_t>(c)] = c;
    }
    for (CoreId c : allowed_cores)
        EXIST_ASSERT(c >= 0 && c < numCores(), "bad core %d in affinity",
                     c);
    processes_.push_back(std::make_unique<Process>(
        next_pid_++, name, std::move(binary), std::move(allowed_cores)));
    return processes_.back().get();
}

Thread *
Kernel::createThread(Process *proc, ThreadDriver *driver)
{
    auto t = std::make_unique<Thread>(next_tid_++, proc,
                                      rng_.fork(0x7431).next());
    t->setDriver(driver ? driver : &compute_driver_);
    t->setState(ThreadState::kBlocked);
    threads_.push_back(std::move(t));
    return threads_.back().get();
}

void
Kernel::startThread(Thread *t)
{
    wakeThread(t);
}

void
Kernel::wakeThread(Thread *t)
{
    if (t->state() != ThreadState::kBlocked)
        return;
    t->setState(ThreadState::kReady);
    enqueue(t);
}

Process *
Kernel::findProcess(const std::string &name) const
{
    for (const auto &p : processes_)
        if (p->name() == name)
            return p.get();
    return nullptr;
}

CoreId
Kernel::pickCoreFor(Thread *t) const
{
    const auto &allowed = t->process().allowedCores();
    CoreId best = allowed.front();
    std::size_t best_score = ~std::size_t{0};
    for (CoreId c : allowed) {
        const Core &core = cores_[static_cast<std::size_t>(c)];
        std::size_t score =
            core.runq.size() + (core.current != nullptr ? 1 : 0);
        if (score < best_score) {
            best_score = score;
            best = c;
        }
    }
    // Stickiness: stay on the previous core unless it is clearly more
    // loaded than the best candidate (mirrors wake-affine behaviour and
    // gives CPU-share pods their "tend to execute on few cores" shape).
    CoreId last = t->lastCore();
    if (last != kInvalidId &&
        std::find(allowed.begin(), allowed.end(), last) != allowed.end()) {
        const Core &lc = cores_[static_cast<std::size_t>(last)];
        std::size_t lscore =
            lc.runq.size() + (lc.current != nullptr ? 1 : 0);
        if (lscore <= best_score + 1)
            return last;
    }
    return best;
}

void
Kernel::enqueue(Thread *t)
{
    CoreId c = pickCoreFor(t);
    Core &core = cores_[static_cast<std::size_t>(c)];
    core.runq.push_back(t);
    if (!core.current)
        scheduleRun(c, std::max(queue_.now(), core.cursor));
}

void
Kernel::scheduleRun(CoreId c, Cycles when)
{
    Core &core = cores_[static_cast<std::size_t>(c)];
    if (core.run_scheduled)
        return;
    core.run_scheduled = true;
    queue_.schedule(std::max(when, queue_.now()), [this, c] {
        cores_[static_cast<std::size_t>(c)].run_scheduled = false;
        runCore(c);
    });
}

void
Kernel::recordSwitch(Cycles now, CoreId cpu, Thread *t, bool in)
{
    if (!switch_log_armed_ || t == nullptr)
        return;
    if (switch_log_filter_ != kInvalidId &&
        t->process().pid() != switch_log_filter_)
        return;
    switch_log_.push_back(SwitchRecord{
        now, cpu, t->process().pid(), t->tid(), in ? 1u : 0u});
}

void
Kernel::contextSwitch(Core &core, Thread *next, Cycles now)
{
    Thread *prev = core.current;
    if (prev == next)
        return;

    Cycles cost = costs::kContextSwitch;
    for (auto &[id, hook] : switch_hooks_)
        cost += hook(now, core.id, prev, next);

    if (prev) {
        recordSwitch(now, core.id, prev, false);
        if (prev->state() == ThreadState::kRunning)
            prev->setState(ThreadState::kReady);
    }

    if (next) {
        recordSwitch(now + cost, core.id, next, true);
        ++total_switches_;
        ++next->counters().context_switches;
        if (next->lastCore() != kInvalidId &&
            next->lastCore() != core.id) {
            ++next->counters().migrations;
            cost += costs::kMigrationPenalty;
        }
        next->counters().kernel_cycles += cost;
        next->setState(ThreadState::kRunning);
        next->setLastCore(core.id);
    }
    core.kernel_cycles += cost;
    core.cursor = now + cost;
    core.quantum_end = core.cursor + costs::kQuantum;
    core.last_switch_in = core.cursor;

    if (prev && !next)
        --busy_cores_;
    else if (!prev && next)
        ++busy_cores_;

    core.current = next;

    // Tell the hardware tracer what the core executes now.
    core.tracer->onContextSwitch(
        next ? next->process().cr3() : 0,
        next ? next->currentAddress() : 0, core.cursor);
}

void
Kernel::dispatch(Core &core, Cycles now)
{
    Thread *next = nullptr;
    while (!core.runq.empty()) {
        Thread *cand = core.runq.front();
        core.runq.pop_front();
        if (cand->state() == ThreadState::kReady) {
            next = cand;
            break;
        }
    }
    contextSwitch(core, next, now);
}

int
Kernel::writeBackTracersActive() const
{
    int n = 0;
    for (const auto &core : cores_)
        if (core.tracer->packetEn() && !core.tracer->cacheBypass())
            ++n;
    return n;
}

double
Kernel::effectiveCpi(const Core &core, const Thread &t) const
{
    const AppProfile &p = t.process().profile();
    double cpi = p.base_cpi;

    // Co-location interference on the shared LLC.
    int others = std::max(0, busy_cores_ - 1);
    double interference =
        p.llc_sensitivity * static_cast<double>(std::min(others, 12));

    // SMT sibling contention.
    if (cfg_.smt) {
        CoreId sib = core.id ^ 1;
        if (sib < numCores() &&
            cores_[static_cast<std::size_t>(sib)].current != nullptr)
            interference += p.smt_sensitivity;
    }

    // LLC pollution from write-back trace output on other cores.
    int wb = writeBackTracersActive();
    if (core.tracer->packetEn() && !core.tracer->cacheBypass())
        --wb;
    if (wb > 0)
        interference += costs::kTracePollutionWeight * p.llc_sensitivity *
                        static_cast<double>(std::min(wb, 4));

    // Local trace-write bandwidth tax while this core emits packets.
    double tax = 0.0;
    if (core.tracer->packetEn())
        tax = core.tracer->cacheBypass() ? costs::kTraceTaxBypass
                                         : costs::kTraceTaxWriteBack;

    return cpi * (1.0 + interference) * (1.0 + tax);
}

bool
Kernel::handleSyscallInternal(Core &core, Thread &t, Cycles &cursor)
{
    const AppProfile &prof = t.process().profile();
    ++t.counters().syscalls;

    Cycles cost =
        costs::kSyscallBase + usToCycles(prof.syscall_kernel_us);
    for (auto &[id, hook] : syscall_hooks_)
        cost += hook(cursor, core.id, t);
    cursor += cost;
    core.kernel_cycles += cost;
    t.counters().kernel_cycles += cost;

    if (t.rng().bernoulli(prof.blocking_fraction)) {
        // Blocking syscall: park the thread; I/O completion wakes it.
        Cycles delay = usToCycles(
            t.rng().exponential(prof.blocking_io_us_mean));
        Thread *tp = &t;
        queue_.schedule(cursor + delay, [this, tp] { wakeThread(tp); });
        return true;
    }

    // Fast syscall: back to user mode; packet generation resumes.
    core.tracer->onUserResume(t.process().cr3(), t.currentAddress(),
                              cursor);
    return false;
}

void
Kernel::runCore(CoreId c)
{
    Core &core = cores_[static_cast<std::size_t>(c)];
    Cycles now = std::max(queue_.now(), core.cursor);

    if (!core.current) {
        dispatch(core, now);
        if (!core.current)
            return;
        now = core.cursor;
    }

    Thread *t = core.current;
    const AppProfile &prof = t->process().profile();
    const ProgramBinary &binary = t->process().binary();
    const std::uint64_t cr3 = t->process().cr3();
    CoreTracer &tracer = *core.tracer;

    Cycles slice_end = std::min(core.quantum_end, now + costs::kMaxSlice);
    Cycles next_ev = queue_.nextTime();
    if (next_ev != EventQueue::kMaxTime && next_ev > now)
        slice_end = std::min(slice_end, next_ev);

    const double cpi = effectiveCpi(core, *t);
    Cycles cursor = now;
    bool blocked = false;
    double cycle_debt = 0.0;

    do {
        if (core.pending_interrupt) {
            cursor += core.pending_interrupt;
            core.kernel_cycles += core.pending_interrupt;
            t->counters().kernel_cycles += core.pending_interrupt;
            core.pending_interrupt = 0;
        }

        StepResult s = t->exec().step();
        cycle_debt += static_cast<double>(s.insns) * cpi;
        auto cost = static_cast<Cycles>(cycle_debt);
        cycle_debt -= static_cast<double>(cost);
        cursor += cost;

        TaskCounters &tc = t->counters();
        tc.insns += s.insns;
        tc.user_cycles += cost;
        double kinsn = static_cast<double>(s.insns) / 1000.0;
        tc.branch_misses += prof.branch_miss_pki * kinsn;
        tc.l1_misses += prof.l1_miss_pki * kinsn;
        double llc_pki = prof.llc_miss_pki;
        if (tracer.packetEn() && !tracer.cacheBypass())
            llc_pki *= 1.0 + costs::kTraceLlcMissInflation;
        tc.llc_misses += llc_pki * kinsn;

        if (branch_observer_)
            branch_observer_->onBranch(c, *t, s.branch, cursor);

        tracer.onBranch(s.branch, binary, cursor, cr3, true);
        if (pmi_handler_) {
            int pmis = tracer.takePmis();
            while (pmis-- > 0) {
                Cycles pc = pmi_handler_(c, cursor);
                cursor += pc;
                core.kernel_cycles += pc;
                tc.kernel_cycles += pc;
            }
        }

        t->consumeWork(static_cast<double>(s.insns));

        if (s.syscall) {
            if (s.branch.kind != BranchKind::kSyscall)
                tracer.onSyscallEntry(cursor);
            if (handleSyscallInternal(core, *t, cursor)) {
                blocked = true;
                break;
            }
        }

        if (t->workRemaining() <= 0.0) {
            if (!t->driver()->onWorkExhausted(*t, cursor)) {
                blocked = true;
                break;
            }
        }
    } while (cursor < slice_end);

    core.busy += cursor - now;
    core.cursor = cursor;

    if (blocked) {
        t->setState(ThreadState::kBlocked);
        dispatch(core, cursor);
    } else if (cursor >= core.quantum_end && !core.runq.empty()) {
        t->setState(ThreadState::kReady);
        core.runq.push_back(t);
        dispatch(core, cursor);
    }

    if (core.current)
        scheduleRun(c, core.cursor);
}

int
Kernel::addSchedSwitchHook(SchedSwitchHook hook)
{
    int id = next_hook_id_++;
    switch_hooks_.emplace(id, std::move(hook));
    return id;
}

void
Kernel::removeSchedSwitchHook(int id)
{
    switch_hooks_.erase(id);
}

int
Kernel::addSyscallHook(SyscallHook hook)
{
    int id = next_hook_id_++;
    syscall_hooks_.emplace(id, std::move(hook));
    return id;
}

void
Kernel::removeSyscallHook(int id)
{
    syscall_hooks_.erase(id);
}

int
Kernel::addInterruptSource(const InterruptSource &src)
{
    EXIST_ASSERT(src.period > 0, "interrupt source needs a period");
    int id = next_hook_id_++;
    interrupt_sources_.emplace(id, src);
    for (int c = 0; c < numCores(); ++c)
        armInterruptTick(id, c);
    return id;
}

void
Kernel::removeInterruptSource(int id)
{
    interrupt_sources_.erase(id);
}

void
Kernel::armInterruptTick(int id, CoreId c)
{
    auto it = interrupt_sources_.find(id);
    if (it == interrupt_sources_.end())
        return;
    queue_.schedule(queue_.now() + it->second.period, [this, id, c] {
        auto iter = interrupt_sources_.find(id);
        if (iter == interrupt_sources_.end())
            return;  // source removed; stop ticking
        Core &core = cores_[static_cast<std::size_t>(c)];
        if (core.current) {
            core.pending_interrupt += iter->second.cost;
            iter->second.handler(c, core.current);
            // The debt is consumed next slice; make sure one runs.
            scheduleRun(c, queue_.now());
        } else {
            iter->second.handler(c, nullptr);
        }
        armInterruptTick(id, c);
    });
}

void
Kernel::armSwitchLog(ProcessId pid_filter)
{
    switch_log_armed_ = true;
    switch_log_filter_ = pid_filter;
    switch_log_.clear();
}

void
Kernel::disarmSwitchLog()
{
    switch_log_armed_ = false;
}

std::vector<SwitchRecord>
Kernel::takeSwitchLog()
{
    return std::move(switch_log_);
}

void
Kernel::setTimer(Cycles when, std::function<void()> fn)
{
    queue_.schedule(when, std::move(fn));
}

TaskCounters
Kernel::aggregateCounters() const
{
    TaskCounters total;
    for (const auto &t : threads_)
        total.accumulate(t->counters());
    return total;
}

}  // namespace exist
