/**
 * @file
 * The calibrated cost model (DESIGN.md §9). Every tracing-related
 * operation the paper identifies as a source of overhead has an explicit
 * cost constant here; the *structure* — who pays it and how often — is
 * what the simulation reproduces. Constants are order-of-magnitude
 * figures from the SDM, perf documentation and the paper itself.
 */
#ifndef EXIST_OS_COSTS_H
#define EXIST_OS_COSTS_H

#include "util/types.h"

namespace exist::costs {

/** Direct cost of a context switch (state save/restore + runqueue). */
inline constexpr Cycles kContextSwitch = usToCycles(3.0);

/** Extra indirect cost when a thread migrates across cores (cache
 *  warm-up, paid gradually but charged up front). */
inline constexpr Cycles kMigrationPenalty = usToCycles(6.0);

/** A perf statistical-sampling interrupt: PMI + stack unwind + store.
 *  At -F 3999 this yields the ~3% overhead the paper measures. */
inline constexpr Cycles kSamplingInterrupt = usToCycles(8.0);

/** One eBPF tracepoint hit (sys_enter): probe dispatch, map update and
 *  the amortized bpftrace userspace processing. */
inline constexpr Cycles kEbpfProbe = usToCycles(3.0);

/** Base in-kernel syscall path (enter + exit), excluding service time
 *  modelled by the application profile. */
inline constexpr Cycles kSyscallBase = usToCycles(0.4);

/** PMI taken when an INT-marked ToPA region fills (perf aux wakeup). */
inline constexpr Cycles kAuxPmi = usToCycles(30.0);

/** perf's per-byte cost to move aux data to userspace and perf.data:
 *  copy + file write, in cycles per *model* byte (a model byte stands
 *  for kTraceByteScale real bytes). */
inline constexpr double kAuxDumpPerModelByte = 0.45;

/**
 * CPI tax while the local tracer emits packets through write-back
 * memory (the perf/NHT configuration): trace stores compete with the
 * application in the cache hierarchy.
 */
inline constexpr double kTraceTaxWriteBack = 0.035;

/**
 * CPI tax with cache-bypass output buffers (EXIST's configuration,
 * paper §3.3): only residual bandwidth sharing remains — this is the
 * "digit-level" native overhead of the hardware feature.
 */
inline constexpr double kTraceTaxBypass = 0.008;

/**
 * LLC pollution experienced by *other* cores per active write-back
 * tracer on the node, scaled by each profile's llc_sensitivity
 * (normalized to a 0.03 baseline).
 */
inline constexpr double kTracePollutionWeight = 0.35;

/** Scheduler timeslice (CFS-ish granularity under overcommit). */
inline constexpr Cycles kQuantum = usToCycles(1000.0);

/** Extra LLC misses of the traced thread while its trace is written
 *  through write-back memory (fractional inflation). */
inline constexpr double kTraceLlcMissInflation = 0.05;

/** Upper bound on one core-execution slice between event-queue visits
 *  (simulation fidelity knob, not a modelled cost). */
inline constexpr Cycles kMaxSlice = usToCycles(50.0);

/** One-way network latency between services (same DC). */
inline constexpr Cycles kRpcNetLatency = usToCycles(60.0);

/** Kernel-module load (insmod) one-time cost, paper Fig. 17. */
inline constexpr Cycles kInsmodCost = usToCycles(45'000.0);

}  // namespace exist::costs

#endif  // EXIST_OS_COSTS_H
