#include "os/service.h"

#include <cmath>

#include "os/costs.h"
#include "util/logging.h"

namespace exist {

Service::Service(Kernel *kernel, Process *proc, std::uint64_t seed)
    : kernel_(kernel), proc_(proc), rng_(seed)
{
    const AppProfile &p = proc->profile();
    double cv = std::max(p.demand_cv, 0.01);
    double sigma2 = std::log(1.0 + cv * cv);
    demand_sigma_ = std::sqrt(sigma2);
    demand_mu_ = std::log(std::max(p.demand_mean_insns, 1.0)) - sigma2 / 2;
}

Service::~Service() = default;

double
Service::drawDemand()
{
    return rng_.lognormal(demand_mu_, demand_sigma_);
}

void
Service::spawnWorkers(int n)
{
    for (int i = 0; i < n; ++i) {
        Thread *t = kernel_->createThread(proc_, this);
        workers_.push_back(t);
        idle_.push_back(t);
    }
}

void
Service::submit(Cycles now, RequestDone done)
{
    auto job = std::make_unique<Job>();
    job->done = std::move(done);
    job->rpcs_left = 0;
    if (downstream_) {
        job->rpcs_left = rpcs_override_ >= 0
                             ? rpcs_override_
                             : proc_->profile().downstream_rpcs;
    }

    if (!idle_.empty()) {
        Thread *w = idle_.front();
        idle_.pop_front();
        attach(w, std::move(job), now);
    } else {
        pending_.push_back(std::move(job));
    }
}

void
Service::attach(Thread *w, std::unique_ptr<Job> job, Cycles now)
{
    (void)now;
    active_[w->tid()] = std::move(job);
    w->assignWork(drawDemand());
    kernel_->wakeThread(w);
}

void
Service::finish(Thread *w, Job &job, Cycles now)
{
    if (job.done)
        job.done(now);
    ++completed_;
    active_.erase(w->tid());

    if (!pending_.empty()) {
        auto next = std::move(pending_.front());
        pending_.pop_front();
        // Reuse this (running) worker directly: assign and continue.
        active_[w->tid()] = std::move(next);
        w->assignWork(drawDemand());
    } else {
        idle_.push_back(w);
    }
}

bool
Service::onWorkExhausted(Thread &t, Cycles now)
{
    auto it = active_.find(t.tid());
    if (it == active_.end()) {
        // Spurious wake without a job (e.g. service being torn down).
        return false;
    }
    Job &job = *it->second;

    if (job.rpcs_left > 0 && downstream_) {
        --job.rpcs_left;
        Thread *w = &t;
        // Synchronous RPC: the worker blocks until the response returns
        // over the "network".
        kernel_->queue().scheduleAfter(costs::kRpcNetLatency, [this, w] {
            Cycles snow = kernel_->now();
            downstream_->submit(snow, [this, w](Cycles done_time) {
                kernel_->queue().schedule(
                    done_time + costs::kRpcNetLatency, [this, w] {
                        onRpcResponse(w, kernel_->now());
                    });
            });
        });
        return false;  // block awaiting the response
    }

    // Request complete. finish() may assign the next pending job to
    // this worker, in which case it keeps running.
    finish(&t, job, now);
    return active_.find(t.tid()) != active_.end();
}

void
Service::onRpcResponse(Thread *w, Cycles now)
{
    auto it = active_.find(w->tid());
    if (it == active_.end())
        return;
    // Post-RPC continuation work before the next RPC or the reply.
    w->assignWork(std::max(200.0, drawDemand() * 0.15));
    (void)now;
    kernel_->wakeThread(w);
}

}  // namespace exist
