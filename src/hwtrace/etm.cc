#include "hwtrace/etm.h"

#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "util/logging.h"

namespace exist::etm {

void
EtmPacketWriter::reset(Cycles now)
{
    atom_bits_ = 0;
    atom_count_ = 0;
    last_addr_ = 0;
    last_cyc_ = now;
    bytes_since_sync_ = 0;
    in_sync_ = false;
}

void
EtmPacketWriter::emit(const std::uint8_t *bytes, std::size_t n)
{
    out_->insert(out_->end(), bytes, bytes + n);
    bytes_since_sync_ += n;
}

void
EtmPacketWriter::cycleCount(Cycles now)
{
    std::uint64_t delta = now - last_cyc_;
    last_cyc_ = now;
    std::uint8_t buf[1 + 10];
    buf[0] = static_cast<std::uint8_t>(EtmOp::kCycleCount);
    std::size_t i = 1;
    do {
        std::uint8_t b = delta & 0x7f;
        delta >>= 7;
        if (delta)
            b |= 0x80;
        buf[i++] = b;
    } while (delta);
    emit(buf, i);
}

void
EtmPacketWriter::maybeSync(Cycles now)
{
    if (in_sync_ || bytes_since_sync_ < kSyncPeriodBytes)
        return;
    in_sync_ = true;
    flushAtoms(now);
    std::uint8_t sync[kAsyncPadBytes + 1] = {};
    sync[kAsyncPadBytes] =
        static_cast<std::uint8_t>(EtmOp::kAsyncTerm);
    emit(sync, sizeof(sync));
    std::uint8_t info[2] = {
        static_cast<std::uint8_t>(EtmOp::kTraceInfo), 0x01};
    emit(info, sizeof(info));
    std::uint8_t ts[8];
    ts[0] = static_cast<std::uint8_t>(EtmOp::kTimestamp);
    for (int i = 0; i < 7; ++i)
        ts[1 + i] = static_cast<std::uint8_t>(now >> (8 * i));
    emit(ts, sizeof(ts));
    // Reset the address-compression base across the sync point (both
    // sides do; the next Address packet then carries enough bytes to
    // stand alone). Unlike the IPT PSB's FUP, no flow re-anchor is
    // emitted: a decoder of a contiguous ETM stream keeps its state,
    // and a mid-stream entrant waits for the next Address packet.
    last_addr_ = 0;
    bytes_since_sync_ = 0;
    in_sync_ = false;
}

void
EtmPacketWriter::emitAddress(EtmOp kind, std::uint64_t ip)
{
    // ETM-style compression: short (2-byte) / mid (4-byte) deltas
    // against the last emitted address, or the full 8 bytes.
    std::uint64_t diff = ip ^ last_addr_;
    EtmOp op;
    int len;
    if ((diff >> 16) == 0) {
        op = EtmOp::kAddrShort;
        len = 2;
    } else if ((diff >> 32) == 0) {
        op = EtmOp::kAddrMid;
        len = 4;
    } else {
        op = EtmOp::kAddrLong;
        len = 8;
    }
    std::uint8_t buf[2 + 8];
    std::size_t i = 0;
    if (kind == EtmOp::kTraceOn)
        buf[i++] = static_cast<std::uint8_t>(EtmOp::kTraceOn);
    buf[i++] = static_cast<std::uint8_t>(op);
    for (int b = 0; b < len; ++b)
        buf[i++] = static_cast<std::uint8_t>(ip >> (8 * b));
    emit(buf, i);
    last_addr_ = ip;
}

void
EtmPacketWriter::atom(bool taken, Cycles now)
{
    maybeSync(now);
    atom_bits_ |= static_cast<std::uint8_t>(taken ? 1 : 0)
                  << atom_count_;
    ++atom_count_;
    if (atom_count_ == 8)
        flushAtoms(now);
}

void
EtmPacketWriter::flushAtoms(Cycles now)
{
    if (atom_count_ == 0)
        return;
    cycleCount(now);
    std::uint8_t buf[2];
    buf[0] = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(EtmOp::kAtom) |
        static_cast<std::uint8_t>(atom_count_ - 1));
    buf[1] = atom_bits_;
    emit(buf, 2);
    ++atom_packets_;
    atom_bits_ = 0;
    atom_count_ = 0;
}

void
EtmPacketWriter::address(std::uint64_t ip, Cycles now)
{
    maybeSync(now);
    // Atoms describe branches before this transfer; ETM keeps strict
    // stream order, so flush them first (unlike IPT's deferred TNT).
    flushAtoms(now);
    cycleCount(now);
    emitAddress(EtmOp::kAddrLong /*plain*/, ip);
    ++addr_packets_;
    current_ip_ = ip;
}

void
EtmPacketWriter::traceOn(std::uint64_t ip, Cycles now)
{
    maybeSync(now);
    cycleCount(now);
    emitAddress(EtmOp::kTraceOn, ip);
    current_ip_ = ip;
}

void
EtmPacketWriter::traceOff(Cycles now)
{
    flushAtoms(now);
    cycleCount(now);
    std::uint8_t b = static_cast<std::uint8_t>(EtmOp::kTraceOff);
    emit(&b, 1);
}

void
EtmPacketWriter::context(std::uint32_t ctx)
{
    std::uint8_t buf[5];
    buf[0] = static_cast<std::uint8_t>(EtmOp::kContext);
    for (int i = 0; i < 4; ++i)
        buf[1 + i] = static_cast<std::uint8_t>(ctx >> (8 * i));
    emit(buf, sizeof(buf));
}

std::vector<std::uint8_t>
transcodeToCommon(const std::vector<std::uint8_t> &etm,
                  std::size_t *errors)
{
    // Lower into the common (IPT-style) vocabulary by re-emitting
    // through the shared PacketWriter into an amply-sized buffer.
    TopaBuffer sink;
    sink.configure(
        {TopaEntry{etm.size() * 2 + 65536, false, false}}, true);
    PacketWriter writer(&sink);
    writer.setTscEnabled(true);
    writer.setCycEnabled(true);
    writer.resetState(0);

    std::size_t bad = 0;
    std::size_t pos = 0;
    std::uint64_t last_addr = 0;
    Cycles now = 0;
    bool pending_trace_on = false;

    auto have = [&](std::size_t n) { return pos + n <= etm.size(); };
    auto read_le = [&](std::size_t n) {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < n; ++i)
            v |= static_cast<std::uint64_t>(etm[pos + i]) << (8 * i);
        pos += n;
        return v;
    };
    auto read_addr = [&](std::uint8_t header) -> std::uint64_t {
        std::size_t len = header ==
                                  static_cast<std::uint8_t>(
                                      EtmOp::kAddrShort)
                              ? 2
                              : header == static_cast<std::uint8_t>(
                                              EtmOp::kAddrMid)
                                    ? 4
                                    : 8;
        if (!have(len)) {
            pos = etm.size();
            return last_addr;
        }
        std::uint64_t low = read_le(len);
        std::uint64_t mask =
            len >= 8 ? ~0ull : ((1ull << (8 * len)) - 1);
        last_addr = (last_addr & ~mask) | (low & mask);
        return last_addr;
    };

    while (pos < etm.size()) {
        std::uint8_t b = etm[pos];

        if ((b & 0xf8) == static_cast<std::uint8_t>(EtmOp::kAtom)) {
            if (!have(2)) {
                ++bad;
                break;
            }
            int count = (b & 0x07) + 1;
            std::uint8_t bits = etm[pos + 1];
            pos += 2;
            for (int i = 0; i < count; ++i)
                writer.tnt((bits >> i) & 1, now);
            continue;
        }

        switch (static_cast<EtmOp>(b)) {
          case EtmOp::kPad:
            ++pos;  // part of an A-Sync run
            continue;
          case EtmOp::kAsyncTerm:
            ++pos;
            // Sync point: both sides reset address compression.
            last_addr = 0;
            continue;
          case EtmOp::kTraceInfo:
            pos += 2;
            continue;
          case EtmOp::kTimestamp:
            if (!have(8)) {
                ++bad;
                pos = etm.size();
                break;
            }
            ++pos;
            now = read_le(7);
            continue;
          case EtmOp::kCycleCount: {
            ++pos;
            std::uint64_t v = 0;
            int shift = 0;
            while (pos < etm.size()) {
                std::uint8_t byte = etm[pos++];
                v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
                shift += 7;
                if (!(byte & 0x80))
                    break;
            }
            now += v;
            continue;
          }
          case EtmOp::kTraceOn:
            ++pos;
            pending_trace_on = true;
            continue;
          case EtmOp::kTraceOff:
            ++pos;
            writer.flushTnt(now);
            writer.pgd(now);
            continue;
          case EtmOp::kContext:
            if (!have(5)) {
                ++bad;
                pos = etm.size();
                break;
            }
            ++pos;
            writer.pip(read_le(4));
            continue;
          case EtmOp::kAddrShort:
          case EtmOp::kAddrMid:
          case EtmOp::kAddrLong: {
            ++pos;
            std::uint64_t addr = read_addr(b);
            if (pending_trace_on) {
                writer.pge(addr, now);
                pending_trace_on = false;
            } else {
                writer.tip(addr, now);
            }
            writer.setCurrentIp(addr);
            continue;
          }
          default:
            ++bad;
            ++pos;
            continue;
        }
    }
    writer.flushTnt(now);

    if (errors != nullptr)
        *errors = bad;
    const auto &data = sink.data();
    return std::vector<std::uint8_t>(
        data.begin(),
        data.begin() + static_cast<std::ptrdiff_t>(
                           sink.bytesAccepted()));
}

}  // namespace exist::etm
