/**
 * @file
 * An ARM CoreSight ETM-style trace format — the paper's §6.2 claim
 * ("the efficient abstraction designs can be easily extended to other
 * platforms") made concrete. The wire format differs from the
 * IPT-style one everywhere it matters: conditional outcomes travel as
 * Atom packets (runs of E/N atoms), indirect targets as Address
 * packets with their own compression scheme, filter transitions as
 * TraceOn/TraceOff, and synchronization as A-Sync byte runs.
 *
 * Portability is demonstrated the way production stacks do it
 * (OpenCSD/perfetto-style): a transcoder lowers the ETM stream into
 * the common packet vocabulary, after which the whole decode pipeline
 * — flow reconstruction, attribution, behaviour reports — works
 * unchanged.
 */
#ifndef EXIST_HWTRACE_ETM_H
#define EXIST_HWTRACE_ETM_H

#include <cstdint>
#include <vector>

#include "hwtrace/packet.h"
#include "util/types.h"

namespace exist::etm {

/** ETM-style packet headers. */
enum class EtmOp : std::uint8_t {
    kPad = 0x00,
    kAsyncTerm = 0x80,     ///< terminates an A-Sync run of kPad bytes
    kTraceInfo = 0x01,     ///< 1 payload byte (trace parameters)
    kAtom = 0xa0,          ///< 0xa0|count(1..8), then 1 bit-payload byte
    kAddrShort = 0xb1,     ///< 2-byte address delta (low bytes)
    kAddrMid = 0xb2,       ///< 4-byte address delta
    kAddrLong = 0xb3,      ///< full 8-byte address
    kContext = 0xc0,       ///< 4-byte context id (like PIP)
    kTraceOn = 0xd0,       ///< tracing (re)starts; address follows
    kTraceOff = 0xd1,      ///< tracing stops
    kTimestamp = 0xe0,     ///< 7-byte timestamp
    kCycleCount = 0xe1,    ///< varint cycle delta
};

/** Number of pad bytes in an A-Sync sequence (plus the terminator). */
inline constexpr int kAsyncPadBytes = 11;
/** Emit an A-Sync + timestamp roughly every this many bytes. */
inline constexpr std::uint64_t kSyncPeriodBytes = 4096;

/**
 * Encoder producing the ETM-style byte stream. Mirrors the IPT-style
 * writer's call surface (atom per conditional, address per indirect,
 * on/off at filter boundaries) so a CoreSight-flavoured tracer could
 * slot into the same kernel integration.
 */
class EtmPacketWriter
{
  public:
    explicit EtmPacketWriter(std::vector<std::uint8_t> *out)
        : out_(out)
    {
    }

    void reset(Cycles now);

    /** Conditional-branch outcome (an E or N atom). */
    void atom(bool taken, Cycles now);
    /** Indirect transfer target. */
    void address(std::uint64_t ip, Cycles now);
    /** Filter entry at `ip` (TraceOn). */
    void traceOn(std::uint64_t ip, Cycles now);
    /** Filter exit (TraceOff). */
    void traceOff(Cycles now);
    /** Context (address-space) change. */
    void context(std::uint32_t ctx);
    /** Flush a partial atom group (at disable / before sync). */
    void flushAtoms(Cycles now);

    std::uint64_t atomPackets() const { return atom_packets_; }
    std::uint64_t addressPackets() const { return addr_packets_; }

  private:
    void emit(const std::uint8_t *bytes, std::size_t n);
    void maybeSync(Cycles now);
    void cycleCount(Cycles now);
    void emitAddress(EtmOp on_or_plain, std::uint64_t ip);

    std::vector<std::uint8_t> *out_;
    std::uint8_t atom_bits_ = 0;
    int atom_count_ = 0;
    std::uint64_t last_addr_ = 0;
    std::uint64_t current_ip_ = 0;
    Cycles last_cyc_ = 0;
    std::uint64_t bytes_since_sync_ = 0;
    bool in_sync_ = false;
    std::uint64_t atom_packets_ = 0;
    std::uint64_t addr_packets_ = 0;
};

/**
 * Lower an ETM-style stream into the common packet vocabulary (the
 * IPT-style byte format the shared decode pipeline consumes). Returns
 * the transcoded bytes; `errors` counts malformed inputs skipped.
 */
std::vector<std::uint8_t>
transcodeToCommon(const std::vector<std::uint8_t> &etm_bytes,
                  std::size_t *errors = nullptr);

}  // namespace exist::etm

#endif  // EXIST_HWTRACE_ETM_H
