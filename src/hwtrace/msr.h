/**
 * @file
 * Model-specific registers controlling the per-core hardware tracer,
 * with the architectural constraint that makes EXIST's control problem
 * interesting: trace configuration may only change while tracing is
 * disabled, so every reconfiguration is a disable/modify/enable sequence
 * (paper §2.3). Each WRMSR/RDMSR has a time cost that the calling layer
 * charges to whoever performed it.
 */
#ifndef EXIST_HWTRACE_MSR_H
#define EXIST_HWTRACE_MSR_H

#include <cstdint>

#include "util/types.h"

namespace exist {

/** IA32_RTIT_CTL bit positions (subset used by EXIST, per SDM). */
namespace rtit_ctl {
inline constexpr std::uint64_t kTraceEn = 1ull << 0;
inline constexpr std::uint64_t kCycEn = 1ull << 1;
inline constexpr std::uint64_t kOs = 1ull << 2;
inline constexpr std::uint64_t kUser = 1ull << 3;
inline constexpr std::uint64_t kCr3Filter = 1ull << 7;
inline constexpr std::uint64_t kToPA = 1ull << 8;
inline constexpr std::uint64_t kTscEn = 1ull << 10;
inline constexpr std::uint64_t kBranchEn = 1ull << 13;
}  // namespace rtit_ctl

/** IA32_RTIT_STATUS bits. */
namespace rtit_status {
inline constexpr std::uint64_t kStopped = 1ull << 1;
inline constexpr std::uint64_t kError = 1ull << 4;
}  // namespace rtit_status

/** The RTIT MSRs modelled per core. */
enum class RtitMsr : std::uint8_t {
    kCtl,
    kStatus,
    kCr3Match,
    kOutputBase,
    kOutputMaskPtrs,
};

/** Result of an MSR access: the new value semantics plus its cost. */
struct MsrAccessResult {
    bool ok;       ///< false = #GP (illegal while TraceEn=1)
    Cycles cost;   ///< time consumed by the instruction + serialization
};

/**
 * Per-core RTIT MSR file. Tracks operation counts so the harness can
 * report O(#switch) vs O(#core) control-operation totals.
 */
class MsrFile
{
  public:
    /** Cost of one WRMSR to an RTIT register (includes serialization). */
    static constexpr Cycles kWrmsrCost = usToCycles(0.9);
    /** Cost of one RDMSR. */
    static constexpr Cycles kRdmsrCost = usToCycles(0.3);

    /** Write an MSR. Enforces the config-while-disabled rule. */
    MsrAccessResult write(RtitMsr msr, std::uint64_t value);

    /** Read an MSR value (always legal). */
    std::uint64_t read(RtitMsr msr) const;

    /** Read including the access cost, for callers that charge time. */
    MsrAccessResult readCosted(RtitMsr msr, std::uint64_t &value) const;

    bool traceEnabled() const { return ctl_ & rtit_ctl::kTraceEn; }
    bool cycEnabled() const { return ctl_ & rtit_ctl::kCycEn; }
    bool cr3FilterEnabled() const { return ctl_ & rtit_ctl::kCr3Filter; }
    bool branchEnabled() const { return ctl_ & rtit_ctl::kBranchEn; }
    bool userTracing() const { return ctl_ & rtit_ctl::kUser; }
    bool osTracing() const { return ctl_ & rtit_ctl::kOs; }
    std::uint64_t cr3Match() const { return cr3_match_; }

    /** Status register manipulation used by the tracer itself. */
    void setStopped(bool stopped);
    bool stopped() const { return status_ & rtit_status::kStopped; }

    std::uint64_t writeCount() const { return write_count_; }

    /** Global counter of all RTIT WRMSRs in the process, for reports. */
    static std::uint64_t globalWriteCount();
    static void resetGlobalWriteCount();

  private:
    std::uint64_t ctl_ = 0;
    std::uint64_t status_ = 0;
    std::uint64_t cr3_match_ = 0;
    std::uint64_t output_base_ = 0;
    std::uint64_t output_mask_ = 0;
    std::uint64_t write_count_ = 0;
};

}  // namespace exist

#endif  // EXIST_HWTRACE_MSR_H
