#include "hwtrace/tracer.h"

#include "util/logging.h"

namespace exist {

TracerControlResult
CoreTracer::configure(const TracerConfig &cfg)
{
    TracerControlResult res;
    if (enabled()) {
        // Architecturally illegal; a real driver would #GP. Callers are
        // expected to disable first, so this is a caller bug.
        res.ok = false;
        res.cost = MsrFile::kWrmsrCost;
        return res;
    }

    std::uint64_t ctl = 0;
    if (cfg.branch_en)
        ctl |= rtit_ctl::kBranchEn;
    if (cfg.cyc_en)
        ctl |= rtit_ctl::kCycEn;
    if (cfg.tsc_en)
        ctl |= rtit_ctl::kTscEn;
    if (cfg.user)
        ctl |= rtit_ctl::kUser;
    if (cfg.os)
        ctl |= rtit_ctl::kOs;
    if (cfg.cr3_filter)
        ctl |= rtit_ctl::kCr3Filter;
    ctl |= rtit_ctl::kToPA;

    auto w1 = msrs_.write(RtitMsr::kCtl, ctl);
    res.cost += w1.cost;
    auto w2 = msrs_.write(RtitMsr::kCr3Match, cfg.cr3_match);
    res.cost += w2.cost;
    auto w3 = msrs_.write(RtitMsr::kOutputBase, 0x1000);
    res.cost += w3.cost;
    auto w4 = msrs_.write(RtitMsr::kOutputMaskPtrs, 0);
    res.cost += w4.cost;
    res.ok = w1.ok && w2.ok && w3.ok && w4.ok;

    if (cfg.external_output != nullptr) {
        EXIST_ASSERT(cfg.external_output->configured(),
                     "external output buffer not configured");
        out_ = cfg.external_output;
    } else {
        out_ = nullptr;
        topa_.configure(cfg.topa, cfg.topa_ring);
    }
    writer_.setOutput(&output());
    writer_.setCycEnabled(cfg.cyc_en);
    writer_.setTscEnabled(cfg.tsc_en);
    cache_bypass_ = cfg.cache_bypass;
    return res;
}

TracerControlResult
CoreTracer::enable(Cycles now, std::uint64_t cr3, std::uint64_t ip)
{
    TracerControlResult res;
    EXIST_ASSERT(output().configured(), "enable before ToPA configuration");
    auto w = msrs_.write(RtitMsr::kCtl,
                         msrs_.read(RtitMsr::kCtl) | rtit_ctl::kTraceEn);
    res.cost = w.cost;
    res.ok = w.ok;
    writer_.resetState(now);
    updatePacketEn(cr3, true, ip, now);
    return res;
}

TracerControlResult
CoreTracer::disable(Cycles now)
{
    TracerControlResult res;
    if (packet_en_) {
        writer_.flushTnt(now);
        writer_.pgd(now);
        packet_en_ = false;
    }
    auto w = msrs_.write(RtitMsr::kCtl,
                         msrs_.read(RtitMsr::kCtl) & ~rtit_ctl::kTraceEn);
    res.cost = w.cost;
    res.ok = w.ok;
    return res;
}

bool
CoreTracer::contextMatch(std::uint64_t cr3, bool user) const
{
    if (user && !msrs_.userTracing())
        return false;
    if (!user && !msrs_.osTracing())
        return false;
    if (msrs_.cr3FilterEnabled() && cr3 != msrs_.cr3Match())
        return false;
    return true;
}

void
CoreTracer::updatePacketEn(std::uint64_t cr3, bool user, std::uint64_t ip,
                           Cycles now)
{
    bool want = enabled() && !stopped() && contextMatch(cr3, user);
    if (want == packet_en_)
        return;
    if (want) {
        writer_.pge(ip, now);
    } else {
        writer_.flushTnt(now);
        writer_.pgd(now);
    }
    packet_en_ = want;
    collectWriterEvents();
}

void
CoreTracer::onBranch(const BranchRecord &rec, const ProgramBinary &prog,
                     Cycles now, std::uint64_t cr3, bool user)
{
    if (!enabled() || stopped())
        return;
    if (!packet_en_) {
        // The filter may match now (e.g. first branch after sched-in of
        // the matched process without an explicit switch callback).
        updatePacketEn(cr3, user, prog.block(rec.source_block).address,
                       now);
        if (!packet_en_)
            return;
    }
    if (!msrs_.branchEnabled())
        return;

    switch (rec.kind) {
      case BranchKind::kConditional:
        writer_.tnt(rec.taken, now);
        break;
      case BranchKind::kDirectJump:
      case BranchKind::kDirectCall:
        // Statically resolvable: no packet (decoder follows binary).
        break;
      case BranchKind::kIndirectJump:
      case BranchKind::kIndirectCall:
      case BranchKind::kReturn:
        writer_.tip(prog.block(rec.target_block).address, now);
        break;
      case BranchKind::kSyscall:
        // User-only tracing: leaving for the kernel disables packets.
        writer_.flushTnt(now);
        writer_.pgd(now);
        packet_en_ = false;
        break;
    }
    // Execution now stands at the branch target: the next PSB's FUP
    // must point there for mid-stream decoder sync.
    writer_.setCurrentIp(prog.block(rec.target_block).address);
    collectWriterEvents();
}

void
CoreTracer::onContextSwitch(std::uint64_t cr3, std::uint64_t ip,
                            Cycles now)
{
    if (!enabled())
        return;
    updatePacketEn(cr3, true, ip, now);
}

void
CoreTracer::onSyscallEntry(Cycles now)
{
    if (!packet_en_)
        return;
    writer_.flushTnt(now);
    writer_.pgd(now);
    packet_en_ = false;
    collectWriterEvents();
}

void
CoreTracer::onPtWrite(std::uint64_t value, Cycles now)
{
    if (!packet_en_)
        return;
    writer_.ptw(value, now);
    collectWriterEvents();
}

void
CoreTracer::onUserResume(std::uint64_t cr3, std::uint64_t ip, Cycles now)
{
    if (!enabled() || stopped())
        return;
    // Returning from the kernel: re-evaluate PacketEn (it was dropped
    // at syscall entry for a matched process).
    if (!packet_en_)
        updatePacketEn(cr3, true, ip, now);
}

void
CoreTracer::collectWriterEvents()
{
    WriterEvents e = writer_.takeEvents();
    pending_pmis_ += e.pmis;
    if (e.stopped) {
        msrs_.setStopped(true);
        packet_en_ = false;
    }
}

int
CoreTracer::takePmis()
{
    int n = pending_pmis_;
    pending_pmis_ = 0;
    return n;
}

}  // namespace exist
