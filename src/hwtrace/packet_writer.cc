#include "hwtrace/packet_writer.h"

namespace exist {

void
PacketWriter::resetState(Cycles now)
{
    tnt_bits_ = 0;
    tnt_count_ = 0;
    last_ip_ = 0;
    last_cyc_ = now;
    bytes_since_psb_ = 0;
    in_psb_ = false;
}

void
PacketWriter::emit(const std::uint8_t *bytes, std::uint64_t n)
{
    TopaWriteResult r = out_->write(bytes, n);
    bytes_since_psb_ += r.accepted;
    events_.pmis += r.pmis_fired;
    if (r.stopped_now)
        events_.stopped = true;
}

void
PacketWriter::maybePsb(Cycles now)
{
    if (in_psb_ || bytes_since_psb_ < kPsbPeriodBytes)
        return;
    in_psb_ = true;
    // Pending TNT bits describe branches before this sync point; they
    // must not leak past it, or a decoder entering at the PSB would
    // misapply them (flushTnt's own maybePsb is a no-op: in_psb_).
    flushTnt(now);
    std::uint8_t psb[2 * kPsbRepeat];
    for (int i = 0; i < kPsbRepeat; ++i) {
        psb[2 * i] = static_cast<std::uint8_t>(PacketOp::kExt);
        psb[2 * i + 1] = kExtPsb;
    }
    emit(psb, sizeof(psb));
    ++stats_.psb_packets;
    if (tsc_en_)
        tscPacket(now);
    // FUP with the current IP so a decoder can sync mid-stream. IP
    // compression resets across a PSB on both sides (the parser cannot
    // carry state over a sync point it may have jumped to), so the FUP
    // carries the full address.
    last_ip_ = 0;
    ipPayload(static_cast<std::uint8_t>(PacketOp::kFup), current_ip_,
              now);
    ++stats_.fup_packets;
    std::uint8_t psbend[2] = {static_cast<std::uint8_t>(PacketOp::kExt),
                              kExtPsbEnd};
    emit(psbend, sizeof(psbend));
    bytes_since_psb_ = 0;
    in_psb_ = false;
}

void
PacketWriter::cycPacket(Cycles now)
{
    if (!cyc_en_)
        return;
    std::uint64_t delta = now - last_cyc_;
    last_cyc_ = now;
    std::uint8_t buf[1 + 10];
    buf[0] = static_cast<std::uint8_t>(PacketOp::kCyc);
    std::uint64_t i = 1;
    do {
        std::uint8_t b = delta & 0x7f;
        delta >>= 7;
        if (delta)
            b |= 0x80;
        buf[i++] = b;
    } while (delta);
    emit(buf, i);
    ++stats_.cyc_packets;
}

void
PacketWriter::tscPacket(Cycles now)
{
    std::uint8_t buf[8];
    buf[0] = static_cast<std::uint8_t>(PacketOp::kTsc);
    for (int i = 0; i < 7; ++i)
        buf[1 + i] = static_cast<std::uint8_t>(now >> (8 * i));
    emit(buf, sizeof(buf));
    ++stats_.tsc_packets;
}

void
PacketWriter::ipPayload(std::uint8_t op, std::uint64_t ip, Cycles now)
{
    maybePsb(now);
    // Last-IP compression: 0, 2, 4 or 8 low-order bytes.
    int len;
    std::uint64_t diff = ip ^ last_ip_;
    if (diff == 0)
        len = 0;
    else if ((diff >> 16) == 0)
        len = 2;
    else if ((diff >> 32) == 0)
        len = 4;
    else
        len = 8;
    std::uint8_t buf[2 + 8];
    buf[0] = op;
    buf[1] = static_cast<std::uint8_t>(len);
    for (int i = 0; i < len; ++i)
        buf[2 + i] = static_cast<std::uint8_t>(ip >> (8 * i));
    emit(buf, static_cast<std::uint64_t>(2 + len));
    last_ip_ = ip;
}

void
PacketWriter::tnt(bool taken, Cycles now)
{
    // Check the sync cadence before accumulating: a PSB flushes the
    // bits gathered so far, and the new bit then belongs to the
    // post-PSB stream.
    maybePsb(now);
    tnt_bits_ |= static_cast<std::uint8_t>(taken ? 1 : 0) << tnt_count_;
    ++tnt_count_;
    ++stats_.tnt_bits;
    if (tnt_count_ == 6) {
        cycPacket(now);
        std::uint8_t b = static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(PacketOp::kTnt6) | tnt_bits_);
        emit(&b, 1);
        ++stats_.tnt_packets;
        tnt_bits_ = 0;
        tnt_count_ = 0;
    }
}

void
PacketWriter::flushTnt(Cycles now)
{
    if (tnt_count_ == 0)
        return;
    maybePsb(now);
    // A full 6-bit group is always emitted as kTnt6, so tnt_count_ is
    // 1..5 here: count goes in the high 3 bits, bits in the low 5.
    std::uint8_t buf[2];
    buf[0] = static_cast<std::uint8_t>(PacketOp::kTntPartial);
    buf[1] = static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(tnt_count_) << 5) | (tnt_bits_ & 0x1f));
    emit(buf, 2);
    ++stats_.tnt_packets;
    tnt_bits_ = 0;
    tnt_count_ = 0;
}

void
PacketWriter::tip(std::uint64_t ip, Cycles now)
{
    cycPacket(now);
    ipPayload(static_cast<std::uint8_t>(PacketOp::kTip), ip, now);
    ++stats_.tip_packets;
}

void
PacketWriter::pge(std::uint64_t ip, Cycles now)
{
    current_ip_ = ip;
    cycPacket(now);
    ipPayload(static_cast<std::uint8_t>(PacketOp::kTipPge), ip, now);
    ++stats_.pge_packets;
}

void
PacketWriter::pgd(Cycles now)
{
    flushTnt(now);
    cycPacket(now);
    std::uint8_t buf[2] = {static_cast<std::uint8_t>(PacketOp::kTipPgd),
                           0};
    emit(buf, 2);
    ++stats_.pgd_packets;
}

void
PacketWriter::pip(std::uint64_t cr3)
{
    std::uint8_t buf[6];
    buf[0] = static_cast<std::uint8_t>(PacketOp::kPip);
    for (int i = 0; i < 5; ++i)
        buf[1 + i] = static_cast<std::uint8_t>(cr3 >> (8 * i));
    emit(buf, sizeof(buf));
    ++stats_.pip_packets;
}

void
PacketWriter::ovf()
{
    std::uint8_t b = static_cast<std::uint8_t>(PacketOp::kOvf);
    emit(&b, 1);
    ++stats_.ovf_packets;
}

void
PacketWriter::ptw(std::uint64_t value, Cycles now)
{
    maybePsb(now);
    cycPacket(now);
    std::uint8_t buf[2 + 8];
    buf[0] = static_cast<std::uint8_t>(PacketOp::kPtw);
    buf[1] = 8;
    for (int i = 0; i < 8; ++i)
        buf[2 + i] = static_cast<std::uint8_t>(value >> (8 * i));
    emit(buf, sizeof(buf));
    ++stats_.ptw_packets;
}

WriterEvents
PacketWriter::takeEvents()
{
    WriterEvents e = events_;
    events_ = WriterEvents{};
    return e;
}

}  // namespace exist
