/**
 * @file
 * The per-core hardware tracer: the piece of "silicon" each core owns.
 * Control flows through the MSR file (with its disable-before-configure
 * rule and per-operation costs); data flows from retired branches
 * through the packet writer into the ToPA output.
 *
 * PacketEn — whether packets are actually generated — follows the IPT
 * definition: TraceEn & !Stopped & context-match, where context-match
 * here means user-mode execution of the CR3-matched process (when the
 * CR3 filter is armed). Transitions of PacketEn emit TIP.PGE/TIP.PGD.
 */
#ifndef EXIST_HWTRACE_TRACER_H
#define EXIST_HWTRACE_TRACER_H

#include <cstdint>
#include <vector>

#include "hwtrace/msr.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "util/types.h"
#include "workload/branch.h"
#include "workload/program.h"

namespace exist {

/** Software-visible tracer configuration (what the kernel programs). */
struct TracerConfig {
    bool branch_en = true;
    bool cyc_en = true;
    bool tsc_en = true;
    bool user = true;
    bool os = false;
    bool cr3_filter = false;
    std::uint64_t cr3_match = 0;
    std::vector<TopaEntry> topa;
    bool topa_ring = false;
    /**
     * When set, packets are written to this externally-owned buffer
     * (per-thread buffer schemes swap it at every context switch —
     * which is exactly the costly pattern EXIST eliminates); `topa` is
     * ignored. The buffer must already be configured.
     */
    TopaBuffer *external_output = nullptr;
    /**
     * Whether output regions are mapped cache-bypass (UC/WC). EXIST
     * does this (paper §3.3) so trace stores do not evict application
     * cache lines; the perf configuration uses write-back memory. The
     * OS cost model reads this to pick the trace-write CPI tax.
     */
    bool cache_bypass = false;
};

/** Outcome of a control operation, with the time it consumed. */
struct TracerControlResult {
    bool ok = true;
    Cycles cost = 0;
};

/** Per-core hardware tracer. */
class CoreTracer
{
  public:
    explicit CoreTracer(CoreId core) : core_(core), writer_(&topa_) {}

    CoreId core() const { return core_; }

    /**
     * Program trace configuration. Must be called with tracing
     * disabled; the returned cost covers the MSR writes performed.
     */
    TracerControlResult configure(const TracerConfig &cfg);

    /** Set TraceEn. `ip`/`cr3` describe what the core is executing so
     *  PacketEn can be evaluated immediately. */
    TracerControlResult enable(Cycles now, std::uint64_t cr3,
                               std::uint64_t ip);

    /** Clear TraceEn, flushing a pending partial TNT byte. */
    TracerControlResult disable(Cycles now);

    bool enabled() const { return msrs_.traceEnabled(); }
    bool stopped() const { return msrs_.stopped(); }
    /** True while packets are being generated. */
    bool packetEn() const { return packet_en_; }

    /**
     * Data path: one retired branch from the thread currently running
     * on this core. `cr3` identifies the process; `user` is false while
     * executing in the kernel.
     */
    void onBranch(const BranchRecord &rec, const ProgramBinary &prog,
                  Cycles now, std::uint64_t cr3, bool user);

    /** Context-switch notification: the core now runs `cr3` at `ip`. */
    void onContextSwitch(std::uint64_t cr3, std::uint64_t ip, Cycles now);

    /** The running thread entered the kernel (syscall): with user-only
     *  tracing, packet generation stops until onUserResume. */
    void onSyscallEntry(Cycles now);

    /** A PTWRITE instruction retired with `value` (SS6.1 data flow). */
    void onPtWrite(std::uint64_t value, Cycles now);

    /** Kernel returned to user mode: process `cr3` resumes at `ip`. */
    void onUserResume(std::uint64_t cr3, std::uint64_t ip, Cycles now);

    /** PMIs raised by filled INT regions since the last call. */
    int takePmis();

    /** Whether the configured output is cache-bypass (see TracerConfig). */
    bool cacheBypass() const { return cache_bypass_; }

    /** Streaming hook: forward filled-region spans of this tracer's
     *  output to `cb` (see TopaBuffer::setRegionReadyCallback). Install
     *  after configure(); configure() replaces the output chain. */
    void setRegionReadyCallback(TopaBuffer::RegionReadyFn cb)
    {
        output().setRegionReadyCallback(std::move(cb));
    }

    MsrFile &msrs() { return msrs_; }
    const MsrFile &msrs() const { return msrs_; }
    TopaBuffer &output() { return out_ ? *out_ : topa_; }
    const TopaBuffer &output() const { return out_ ? *out_ : topa_; }
    const PacketStats &packetStats() const { return writer_.stats(); }

    /** Real bytes (model bytes x kTraceByteScale) accepted so far. */
    std::uint64_t realBytesAccepted() const
    {
        return output().bytesAccepted() * kTraceByteScale;
    }
    std::uint64_t realBytesDropped() const
    {
        return output().bytesDropped() * kTraceByteScale;
    }

  private:
    void updatePacketEn(std::uint64_t cr3, bool user, std::uint64_t ip,
                        Cycles now);
    bool contextMatch(std::uint64_t cr3, bool user) const;
    void collectWriterEvents();

    CoreId core_;
    MsrFile msrs_;
    TopaBuffer topa_;
    TopaBuffer *out_ = nullptr;  ///< external output, if any
    PacketWriter writer_;
    bool packet_en_ = false;
    int pending_pmis_ = 0;
    bool cache_bypass_ = false;
};

}  // namespace exist

#endif  // EXIST_HWTRACE_TRACER_H
