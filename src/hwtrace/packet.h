/**
 * @file
 * Trace packet vocabulary of the modelled hardware tracer.
 *
 * The format is Intel-PT-inspired rather than bit-exact: the packet
 * *kinds*, their trigger conditions and their sizes follow the IPT
 * architecture (SDM vol. 3 ch. 33), because those are what EXIST's
 * design decisions depend on — TNT bits for conditionals, TIP packets
 * with last-IP compression for indirect transfers, PSB sync points every
 * 4 KiB, PGE/PGD for filter boundaries, CYC/TSC for timing, OVF for
 * loss. The exact bit layout is simplified to an opcode byte plus
 * payload so the decoder stays readable.
 */
#ifndef EXIST_HWTRACE_PACKET_H
#define EXIST_HWTRACE_PACKET_H

#include <cstdint>

namespace exist {

/**
 * A model core runs at 250 MHz (util/types.h) but stands for a 2+ GHz
 * production core; each simulated branch therefore represents
 * kTraceByteScale branches of the real machine for *data volume*
 * purposes. Buffer capacities are configured in real MB and divided by
 * this scale internally; reported space multiplies back. Time overheads
 * per byte are charged on model bytes with costs scaled accordingly, so
 * all ratios are invariant.
 */
inline constexpr std::uint64_t kTraceByteScale = 16;

/** Packet opcodes (first byte unless stated otherwise). */
enum class PacketOp : std::uint8_t {
    kPad = 0x00,       ///< alignment filler
    kTntPartial = 0x01,///< 2 bytes: count(3b)|bits(6b in next byte)
    kExt = 0x02,       ///< extension prefix: PSB / PSBEND
    kTip = 0x03,       ///< indirect target: len byte + address bytes
    kTipPge = 0x04,    ///< packet generation enable (filter entry)
    kTipPgd = 0x05,    ///< packet generation disable (filter exit)
    kFup = 0x06,       ///< flow update (source IP at async event)
    kPip = 0x07,       ///< CR3 change: 5 payload bytes
    kMode = 0x08,      ///< execution mode: 1 payload byte
    kTsc = 0x09,       ///< timestamp: 7 payload bytes
    kCyc = 0x0a,       ///< cycle delta: varint payload
    kOvf = 0x0b,       ///< overflow marker
    kPtw = 0x0c,       ///< PTWRITE data value: 1 len byte + payload
    kTnt6 = 0x80,      ///< 1 byte: 0b10xxxxxx, six TNT bits
};

/** Second byte after kExt. */
inline constexpr std::uint8_t kExtPsb = 0x82;
inline constexpr std::uint8_t kExtPsbEnd = 0x23;

/** PSB is the 2-byte ext sequence repeated 8 times (16 bytes). */
inline constexpr int kPsbRepeat = 8;
inline constexpr std::uint64_t kPsbPeriodBytes = 4096;

/** Statistics kept per tracer, by packet class. */
struct PacketStats {
    std::uint64_t tnt_packets = 0;
    std::uint64_t tnt_bits = 0;
    std::uint64_t tip_packets = 0;
    std::uint64_t pge_packets = 0;
    std::uint64_t pgd_packets = 0;
    std::uint64_t fup_packets = 0;
    std::uint64_t pip_packets = 0;
    std::uint64_t tsc_packets = 0;
    std::uint64_t cyc_packets = 0;
    std::uint64_t psb_packets = 0;
    std::uint64_t ovf_packets = 0;
    std::uint64_t ptw_packets = 0;

    std::uint64_t
    total() const
    {
        return tnt_packets + tip_packets + pge_packets + pgd_packets +
               fup_packets + pip_packets + tsc_packets + cyc_packets +
               psb_packets + ovf_packets + ptw_packets;
    }
};

}  // namespace exist

#endif  // EXIST_HWTRACE_PACKET_H
