/**
 * @file
 * Table of Physical Addresses (ToPA) output model: a chain of
 * variable-sized memory regions that the tracer fills in order. The last
 * entry either carries the STOP bit — tracing halts and further packets
 * are dropped (EXIST's "compulsory tracing", paper §3.3) — or links back
 * to the first region (ring semantics, the conventional alternative).
 * Entries may carry an INT bit that raises a PMI when the region fills,
 * which is how the perf-based NHT baseline drains its aux buffer.
 */
#ifndef EXIST_HWTRACE_TOPA_H
#define EXIST_HWTRACE_TOPA_H

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.h"

namespace exist {

/** One ToPA table entry describing an output region. */
struct TopaEntry {
    std::uint64_t size_bytes = 0;  ///< model bytes (real / kTraceByteScale)
    bool stop = false;             ///< STOP bit: halt tracing when filled
    bool intr = false;             ///< INT bit: raise PMI when filled
};

/** Outcome of appending bytes to the output. */
struct TopaWriteResult {
    std::uint64_t accepted = 0;  ///< bytes stored
    std::uint64_t dropped = 0;   ///< bytes lost (stopped)
    int pmis_fired = 0;          ///< regions with INT filled by this write
    bool stopped_now = false;    ///< this write hit a STOP region end
};

/**
 * The output buffer backing a ToPA chain. Content is stored linearly in
 * the order regions appear in the table; ring wrap resets the cursor.
 */
class TopaBuffer
{
  public:
    /** Install a new table. Only legal when tracing is disabled; the
     *  tracer enforces that and calls reset() here. */
    void configure(std::vector<TopaEntry> entries, bool ring);

    /** Clear fill state, keeping the configured table. */
    void reset();

    /** Append packet bytes. */
    TopaWriteResult write(const std::uint8_t *data, std::uint64_t n);

    /** Total capacity in model bytes. */
    std::uint64_t capacity() const { return capacity_; }

    bool stopped() const { return stopped_; }
    bool configured() const { return !entries_.empty(); }

    std::uint64_t bytesAccepted() const { return bytes_accepted_; }
    std::uint64_t bytesDropped() const { return bytes_dropped_; }
    /** Cumulative ring wraps, surviving drains (a statistic). */
    std::uint64_t wraps() const { return wraps_base_ + wraps_; }
    /** Whether the store wrapped since the last reset/drain — i.e.
     *  whether data()/wrapOffset() need oldest-first reordering. */
    bool hasWrapped() const { return wraps_ != 0; }

    /**
     * Stored content. For ring buffers that wrapped, the valid data is
     * the last capacity() bytes written; wrapOffset() marks the logical
     * start (oldest byte) within data().
     */
    const std::vector<std::uint8_t> &data() const { return store_; }
    std::uint64_t wrapOffset() const { return wraps_ ? cursor_ : 0; }

    /**
     * Drain the content into `out` and reset the fill state. Used by
     * the NHT baseline's PMI handler (perf copying the aux buffer out).
     */
    std::uint64_t drainTo(std::vector<std::uint8_t> &out);

    /**
     * Streaming hook: called with the freshly-filled span of the store
     * each time a region boundary is crossed (including the STOP
     * region), while the session is still tracing. The span is stable
     * until the next configure()/reset()/drainTo(). Non-destructive —
     * the fill state, STOP semantics and data() content are exactly as
     * without a callback, so batch collection stays bit-identical.
     * Only legal for non-ring chains (a wrap would overwrite bytes a
     * ring consumer has not seen; rings keep the drainTo path).
     */
    using RegionReadyFn =
        std::function<void(const std::uint8_t *data, std::uint64_t n)>;
    void setRegionReadyCallback(RegionReadyFn cb);

    /** Publish the unpublished tail [published, cursor) to the
     *  callback (end-of-session flush); returns the bytes published. */
    std::uint64_t flushRegionReady();

    /** Bytes already handed to the region-ready callback. */
    std::uint64_t publishedBytes() const { return published_; }

  private:
    void publishReady();

    std::vector<TopaEntry> entries_;
    bool ring_ = false;
    std::uint64_t capacity_ = 0;

    std::vector<std::uint8_t> store_;
    std::uint64_t cursor_ = 0;        ///< next write offset in store_
    std::size_t region_ = 0;          ///< current table entry
    std::uint64_t region_fill_ = 0;   ///< bytes into current region
    bool stopped_ = false;
    std::uint64_t bytes_accepted_ = 0;
    std::uint64_t bytes_dropped_ = 0;
    std::uint64_t wraps_ = 0;         ///< wraps since last reset/drain
    std::uint64_t wraps_base_ = 0;    ///< wraps drained away (cumulative)
    std::uint64_t published_ = 0;     ///< region-ready watermark
    RegionReadyFn region_cb_;
};

}  // namespace exist

#endif  // EXIST_HWTRACE_TOPA_H
