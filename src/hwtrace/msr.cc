#include "hwtrace/msr.h"

#include <atomic>

#include "util/logging.h"

namespace exist {

namespace {
// Atomic: sessions may run concurrently on pool workers (parallel
// cluster reconcile), and each simulated WRMSR lands here.
std::atomic<std::uint64_t> g_global_writes{0};
}  // namespace

MsrAccessResult
MsrFile::write(RtitMsr msr, std::uint64_t value)
{
    ++write_count_;
    ++g_global_writes;

    switch (msr) {
      case RtitMsr::kCtl: {
        // Changing anything but TraceEn while TraceEn=1 is illegal:
        // this is the architectural constraint that forces the
        // disable/modify/enable sequence (SDM 33.2.7.1).
        if (traceEnabled() && (value & ~rtit_ctl::kTraceEn) !=
                                  (ctl_ & ~rtit_ctl::kTraceEn)) {
            return {false, kWrmsrCost};
        }
        ctl_ = value;
        if (traceEnabled())
            status_ &= ~rtit_status::kStopped;
        return {true, kWrmsrCost};
      }
      case RtitMsr::kStatus:
        status_ = value;
        return {true, kWrmsrCost};
      case RtitMsr::kCr3Match:
        if (traceEnabled())
            return {false, kWrmsrCost};
        cr3_match_ = value;
        return {true, kWrmsrCost};
      case RtitMsr::kOutputBase:
        if (traceEnabled())
            return {false, kWrmsrCost};
        output_base_ = value;
        return {true, kWrmsrCost};
      case RtitMsr::kOutputMaskPtrs:
        if (traceEnabled())
            return {false, kWrmsrCost};
        output_mask_ = value;
        return {true, kWrmsrCost};
    }
    EXIST_PANIC("unknown RTIT MSR %d", static_cast<int>(msr));
}

std::uint64_t
MsrFile::read(RtitMsr msr) const
{
    switch (msr) {
      case RtitMsr::kCtl: return ctl_;
      case RtitMsr::kStatus: return status_;
      case RtitMsr::kCr3Match: return cr3_match_;
      case RtitMsr::kOutputBase: return output_base_;
      case RtitMsr::kOutputMaskPtrs: return output_mask_;
    }
    EXIST_PANIC("unknown RTIT MSR %d", static_cast<int>(msr));
}

MsrAccessResult
MsrFile::readCosted(RtitMsr msr, std::uint64_t &value) const
{
    value = read(msr);
    return {true, kRdmsrCost};
}

void
MsrFile::setStopped(bool stopped)
{
    if (stopped)
        status_ |= rtit_status::kStopped;
    else
        status_ &= ~rtit_status::kStopped;
}

std::uint64_t
MsrFile::globalWriteCount()
{
    return g_global_writes;
}

void
MsrFile::resetGlobalWriteCount()
{
    g_global_writes = 0;
}

}  // namespace exist
