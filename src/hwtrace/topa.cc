#include "hwtrace/topa.h"

#include <cstring>

#include "util/logging.h"

namespace exist {

void
TopaBuffer::configure(std::vector<TopaEntry> entries, bool ring)
{
    EXIST_ASSERT(!entries.empty(), "empty ToPA table");
    entries_ = std::move(entries);
    ring_ = ring;
    capacity_ = 0;
    for (const auto &e : entries_) {
        EXIST_ASSERT(e.size_bytes > 0, "zero-sized ToPA region");
        capacity_ += e.size_bytes;
    }
    store_.assign(capacity_, 0);
    reset();
}

void
TopaBuffer::reset()
{
    cursor_ = 0;
    region_ = 0;
    region_fill_ = 0;
    stopped_ = false;
    bytes_accepted_ = 0;
    bytes_dropped_ = 0;
    wraps_ = 0;
    wraps_base_ = 0;
    published_ = 0;
}

TopaWriteResult
TopaBuffer::write(const std::uint8_t *data, std::uint64_t n)
{
    TopaWriteResult res;
    EXIST_ASSERT(configured(), "write to unconfigured ToPA");

    while (n > 0) {
        if (stopped_) {
            res.dropped += n;
            bytes_dropped_ += n;
            return res;
        }
        const TopaEntry &e = entries_[region_];
        std::uint64_t room = e.size_bytes - region_fill_;
        std::uint64_t take = room < n ? room : n;
        std::memcpy(store_.data() + cursor_, data, take);
        cursor_ += take;
        region_fill_ += take;
        bytes_accepted_ += take;
        res.accepted += take;
        data += take;
        n -= take;

        if (region_fill_ == e.size_bytes) {
            if (e.intr)
                ++res.pmis_fired;
            if (e.stop) {
                stopped_ = true;
                res.stopped_now = true;
            } else if (region_ + 1 < entries_.size()) {
                ++region_;
                region_fill_ = 0;
            } else if (ring_) {
                region_ = 0;
                region_fill_ = 0;
                cursor_ = 0;
                ++wraps_;
            } else {
                // Table exhausted without STOP and not a ring: treat as
                // stop (hardware would raise ToPA PMI + error).
                stopped_ = true;
                res.stopped_now = true;
            }
            publishReady();
        }
    }
    return res;
}

void
TopaBuffer::setRegionReadyCallback(RegionReadyFn cb)
{
    EXIST_ASSERT(!cb || !ring_,
                 "region-ready callback requires a non-ring ToPA chain");
    region_cb_ = std::move(cb);
}

void
TopaBuffer::publishReady()
{
    if (!region_cb_ || cursor_ <= published_)
        return;
    std::uint64_t n = cursor_ - published_;
    const std::uint8_t *data = store_.data() + published_;
    published_ = cursor_;
    region_cb_(data, n);
}

std::uint64_t
TopaBuffer::flushRegionReady()
{
    std::uint64_t before = published_;
    publishReady();
    return published_ - before;
}

std::uint64_t
TopaBuffer::drainTo(std::vector<std::uint8_t> &out)
{
    std::uint64_t n;
    // Layout depends on wraps *since the previous drain* (wraps_, the
    // epoch counter), not the cumulative count: a buffer that wrapped
    // before an earlier drain but not since holds only cursor_ fresh
    // bytes, and replaying the full capacity here would hand the
    // consumer a stale copy of already-drained data.
    if (wraps_ == 0) {
        n = cursor_;
        out.insert(out.end(), store_.begin(),
                   store_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    } else {
        // Oldest data starts at cursor_ (already overwritten before it).
        n = capacity_;
        out.insert(out.end(),
                   store_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                   store_.end());
        out.insert(out.end(), store_.begin(),
                   store_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    }
    std::uint64_t accepted = bytes_accepted_;
    std::uint64_t dropped = bytes_dropped_;
    std::uint64_t wraps_total = wraps_base_ + wraps_;
    reset();
    // Preserve cumulative counters across drains.
    bytes_accepted_ = accepted;
    bytes_dropped_ = dropped;
    wraps_base_ = wraps_total;
    return n;
}

}  // namespace exist
