/**
 * @file
 * Packet generation logic: turns retired-branch notifications into the
 * byte stream written to the ToPA output. Keeps the encoder-side state
 * that gives IPT its compactness — pending TNT bits (six conditional
 * outcomes per byte), last-IP compression for TIP payloads, cycle
 * reference for CYC deltas, and the PSB sync-point cadence.
 */
#ifndef EXIST_HWTRACE_PACKET_WRITER_H
#define EXIST_HWTRACE_PACKET_WRITER_H

#include <cstdint>

#include "hwtrace/packet.h"
#include "hwtrace/topa.h"
#include "util/types.h"

namespace exist {

/** Accumulated side effects of packet emission since last collection. */
struct WriterEvents {
    int pmis = 0;
    bool stopped = false;
};

/** Encoder front-end writing into a TopaBuffer. */
class PacketWriter
{
  public:
    explicit PacketWriter(TopaBuffer *out) : out_(out) {}

    /** Rebind the output buffer (per-thread buffer swap). */
    void setOutput(TopaBuffer *out) { out_ = out; }

    /** Re-arm for a new tracing session (packet state, not the buffer). */
    void resetState(Cycles now);

    /** Enable CYC packet generation. */
    void setCycEnabled(bool on) { cyc_en_ = on; }
    /** Enable TSC packets at sync points. */
    void setTscEnabled(bool on) { tsc_en_ = on; }

    /**
     * Record where execution currently stands (the target of the last
     * fully-emitted branch). The PSB sync point embeds this in its FUP
     * so a decoder entering mid-stream (ring wrap) resumes exactly
     * where the post-PSB packets apply.
     */
    void setCurrentIp(std::uint64_t ip) { current_ip_ = ip; }

    /** One conditional-branch outcome. */
    void tnt(bool taken, Cycles now);
    /** Indirect transfer to `ip`. */
    void tip(std::uint64_t ip, Cycles now);
    /** Packet generation enable at `ip` (filter entry / sched-in). */
    void pge(std::uint64_t ip, Cycles now);
    /** Packet generation disable (filter exit / syscall entry). */
    void pgd(Cycles now);
    /** CR3 change notification. */
    void pip(std::uint64_t cr3);
    /** Overflow marker. */
    void ovf();
    /** PTWRITE payload: software-chosen data value in the trace (the
     *  paper's SS6.1 data-flow enhancement). */
    void ptw(std::uint64_t value, Cycles now);
    /** Flush a partial TNT byte (done at disable). */
    void flushTnt(Cycles now);

    const PacketStats &stats() const { return stats_; }

    /** Collect and clear pending PMI/stop notifications. */
    WriterEvents takeEvents();

  private:
    void emit(const std::uint8_t *bytes, std::uint64_t n);
    void maybePsb(Cycles now);
    void cycPacket(Cycles now);
    void tscPacket(Cycles now);
    void ipPayload(std::uint8_t op, std::uint64_t ip, Cycles now);

    TopaBuffer *out_;
    bool cyc_en_ = true;
    bool tsc_en_ = true;

    std::uint8_t tnt_bits_ = 0;
    int tnt_count_ = 0;
    std::uint64_t last_ip_ = 0;
    std::uint64_t current_ip_ = 0;
    Cycles last_cyc_ = 0;
    std::uint64_t bytes_since_psb_ = 0;
    bool in_psb_ = false;  ///< guard against PSB recursion

    PacketStats stats_;
    WriterEvents events_;
};

}  // namespace exist

#endif  // EXIST_HWTRACE_PACKET_WRITER_H
