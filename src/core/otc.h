/**
 * @file
 * OTC — Operation-aware Tracing Controller (paper §3.2). The kernel
 * hooker injects a hook at the sched_switch tracepoint that enables a
 * core's tracer the *first* time the target process is scheduled onto
 * it, and deliberately does nothing on sched-out or repeat sched-in:
 * the hardware CR3 filter already suppresses packets for other
 * processes at zero software cost. This reduces costly MSR control
 * sequences from O(#context switches) to O(#cores). A high-resolution
 * timer bounds the tracing period and disables every touched tracer at
 * expiry, preventing infinite tracing.
 */
#ifndef EXIST_CORE_OTC_H
#define EXIST_CORE_OTC_H

#include <functional>
#include <vector>

#include "core/uma.h"
#include "os/kernel.h"
#include "util/types.h"

namespace exist {

class OperationAwareController
{
  public:
    struct Config {
        Process *target = nullptr;
        Cycles period = secondsToCycles(0.5);
        UmaPlan plan;
        /** Ring instead of compulsory STOP buffers (ablation). */
        bool ring_buffers = false;
        /** CYC timing packets (off = control-flow-only tracing). */
        bool cyc_timing = true;
        /**
         * Split each core's ToPA allocation into regions of this many
         * real bytes (last region takes the remainder, STOP stays on
         * the last entry); 0 keeps the historical single region. The
         * byte stream, capacity and STOP point are unchanged — only
         * the region-fill granularity, which is what drives the
         * streaming decoder's region-ready publishing.
         */
        std::uint64_t stream_region_bytes = 0;
        /**
         * Ablation of the paper's central claim: manipulate the tracer
         * at *every* context switch (disable on sched-out, enable on
         * sched-in), the conventional O(#switches) control paradigm,
         * instead of the enable-once O(#cores) hooker.
         */
        bool eager_control = false;
        /** Called (in timer context) when the HRT stops the session. */
        std::function<void()> on_stop;
    };

    /** Configure tracers per the UMA plan and arm the hook + HRT. */
    void start(Kernel &kernel, const Config &cfg);

    /** Disable all touched tracers and remove the hook (idempotent). */
    void stop(Kernel &kernel);

    bool active() const { return hook_id_ != 0; }

    /** Control-operation accounting (the paper's O(#core) claim). */
    std::uint64_t controlOps() const { return control_ops_; }
    std::uint64_t msrWrites() const { return msr_writes_; }
    /** Cycles burned by the facility itself (configure + stop paths),
     *  not charged to application threads. */
    Cycles facilityCycles() const { return facility_cycles_; }
    /** Cores whose tracer was enabled during the session. */
    const std::vector<CoreId> &enabledCores() const
    {
        return enabled_cores_;
    }

  private:
    int hook_id_ = 0;
    ProcessId target_pid_ = kInvalidId;
    std::vector<CoreId> planned_cores_;
    std::vector<bool> core_enabled_;
    std::vector<CoreId> enabled_cores_;
    std::uint64_t control_ops_ = 0;
    std::uint64_t msr_writes_ = 0;
    Cycles facility_cycles_ = 0;
    bool stopped_ = false;
};

}  // namespace exist

#endif  // EXIST_CORE_OTC_H
