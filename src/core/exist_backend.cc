#include "core/exist_backend.h"

#include "hwtrace/packet.h"
#include "util/logging.h"

namespace exist {

void
ExistBackend::start(Kernel &kernel, const SessionSpec &spec)
{
    EXIST_ASSERT(spec.target != nullptr, "EXIST needs a target");
    kernel_ = &kernel;
    collected_log_ = false;
    switch_log_.clear();

    UmaConfig ucfg;
    ucfg.budget_mb = spec.budget_mb;
    ucfg.min_core_buffer_mb = spec.min_core_buffer_mb;
    ucfg.max_core_buffer_mb = spec.max_core_buffer_mb;
    ucfg.sample_ratio = spec.core_sample_ratio;
    plan_ = UsageAwareMemoryAllocator::plan(kernel, *spec.target, ucfg);

    OperationAwareController::Config ocfg;
    ocfg.target = spec.target;
    ocfg.period = spec.period;
    ocfg.plan = plan_;
    ocfg.ring_buffers = spec.ring_buffers;
    ocfg.cyc_timing = spec.cyc_timing;
    ocfg.stream_region_bytes = spec.stream_region_bytes;
    ocfg.eager_control = spec.exist_eager_control;
    ocfg.on_stop = [this, &kernel] {
        // Keep the sidecar before anything else disarms it.
        if (!collected_log_) {
            switch_log_ = kernel.takeSwitchLog();
            collected_log_ = true;
        }
    };
    otc_.start(kernel, ocfg);
}

void
ExistBackend::stop(Kernel &kernel)
{
    otc_.stop(kernel);
    if (!collected_log_) {
        switch_log_ = kernel.takeSwitchLog();
        collected_log_ = true;
    }
}

BackendStats
ExistBackend::stats() const
{
    BackendStats s;
    s.msr_writes = otc_.msrWrites();
    s.control_ops = otc_.controlOps();
    s.traced_cores = plan_.allocations.size();
    if (kernel_) {
        for (const CoreAllocation &a : plan_.allocations) {
            const CoreTracer &tr = kernel_->tracer(a.core);
            s.trace_real_bytes += tr.output().bytesAccepted() *
                                  kTraceByteScale;
            s.dropped_real_bytes += tr.output().bytesDropped() *
                                    kTraceByteScale;
        }
    }
    return s;
}

std::vector<CollectedTrace>
ExistBackend::collect()
{
    std::vector<CollectedTrace> out;
    if (!kernel_)
        return out;
    for (const CoreAllocation &a : plan_.allocations) {
        TopaBuffer &buf = kernel_->tracer(a.core).output();
        CollectedTrace ct;
        ct.core = a.core;
        std::vector<std::uint8_t> bytes;
        // Copy without resetting the hardware buffer: order the ring
        // content oldest-first like the drain path does.
        const auto &store = buf.data();
        std::uint64_t wrap = buf.wrapOffset();
        if (!buf.hasWrapped()) {
            std::uint64_t n =
                buf.bytesAccepted() > buf.capacity()
                    ? buf.capacity()
                    : buf.bytesAccepted();
            bytes.assign(store.begin(),
                         store.begin() + static_cast<std::ptrdiff_t>(n));
        } else {
            bytes.assign(store.begin() +
                             static_cast<std::ptrdiff_t>(wrap),
                         store.end());
            bytes.insert(bytes.end(), store.begin(),
                         store.begin() +
                             static_cast<std::ptrdiff_t>(wrap));
        }
        ct.bytes = std::move(bytes);
        out.push_back(std::move(ct));
    }
    return out;
}

}  // namespace exist
