/**
 * @file
 * The EXIST node-level tracing backend: UMA plans the buffers, OTC
 * runs the minimal-control tracing session, and the result is the
 * structured trace output (per-core packet buffers + the five-tuple
 * context-switch sidecar) that the offline decoder consumes.
 */
#ifndef EXIST_CORE_EXIST_BACKEND_H
#define EXIST_CORE_EXIST_BACKEND_H

#include <vector>

#include "baselines/backend.h"
#include "core/otc.h"
#include "core/uma.h"

namespace exist {

class ExistBackend final : public TracerBackend
{
  public:
    std::string name() const override { return "EXIST"; }
    void start(Kernel &kernel, const SessionSpec &spec) override;
    void stop(Kernel &kernel) override;
    bool active() const override { return otc_.active(); }
    BackendStats stats() const override;
    std::vector<CollectedTrace> collect() override;
    bool producesInstructionTrace() const override { return true; }

    const UmaPlan &plan() const { return plan_; }
    const OperationAwareController &controller() const { return otc_; }

    /** Five-tuple context-switch sidecar captured with the session. */
    const std::vector<SwitchRecord> &switchLog() const
    {
        return switch_log_;
    }

  private:
    Kernel *kernel_ = nullptr;
    OperationAwareController otc_;
    UmaPlan plan_;
    std::vector<SwitchRecord> switch_log_;
    bool collected_log_ = false;
};

}  // namespace exist

#endif  // EXIST_CORE_EXIST_BACKEND_H
