#include "core/otc.h"

#include <algorithm>

#include "hwtrace/packet.h"
#include "hwtrace/tracer.h"
#include "util/logging.h"

namespace exist {

void
OperationAwareController::start(Kernel &kernel, const Config &cfg)
{
    EXIST_ASSERT(cfg.target != nullptr, "OTC needs a target");
    EXIST_ASSERT(hook_id_ == 0, "OTC already active");

    target_pid_ = cfg.target->pid();
    const std::uint64_t cr3 = cfg.target->cr3();
    stopped_ = false;
    planned_cores_.clear();
    enabled_cores_.clear();
    core_enabled_.assign(static_cast<std::size_t>(kernel.numCores()),
                         false);

    // Configure every planned core's tracer up front (tracing is still
    // disabled, so this is architecturally legal). The cost is burned
    // by the facility daemon, not by application threads.
    for (const CoreAllocation &a : cfg.plan.allocations) {
        TracerConfig tc;
        tc.cr3_filter = true;
        tc.cr3_match = cr3;
        tc.cyc_en = cfg.cyc_timing;
        tc.tsc_en = true;
        tc.cache_bypass = true;  // ToPA regions mapped write-combining
        tc.topa_ring = cfg.ring_buffers;
        // Model-byte capacity of this core's allocation. Splitting it
        // into multiple regions (streaming) must not change it, so the
        // split is computed in model bytes.
        const std::uint64_t total_model = a.real_bytes / kTraceByteScale;
        const std::uint64_t region_model =
            cfg.stream_region_bytes / kTraceByteScale;
        if (region_model == 0 || region_model >= total_model) {
            tc.topa = {TopaEntry{total_model,
                                 /*stop=*/!cfg.ring_buffers,
                                 /*intr=*/false}};
        } else {
            std::uint64_t placed = 0;
            while (placed < total_model) {
                std::uint64_t sz =
                    std::min(region_model, total_model - placed);
                placed += sz;
                tc.topa.push_back(TopaEntry{
                    sz,
                    /*stop=*/!cfg.ring_buffers && placed == total_model,
                    /*intr=*/false});
            }
        }
        auto res = kernel.tracer(a.core).configure(tc);
        EXIST_ASSERT(res.ok, "tracer configure failed on core %d",
                     a.core);
        facility_cycles_ += res.cost;
        msr_writes_ += 4;
        planned_cores_.push_back(a.core);
    }

    // Sidecar: record the five-tuple context-switch log so per-core
    // traces can be re-associated with threads afterwards.
    kernel.armSwitchLog(target_pid_);

    // The kernel hooker: enable-once-per-core on sched-in (or, for the
    // ablation, the conventional enable/disable at every switch).
    const bool eager = cfg.eager_control;
    hook_id_ = kernel.addSchedSwitchHook(
        [this, &kernel, cr3, eager](Cycles now, CoreId core,
                                    Thread *prev,
                                    Thread *next) -> Cycles {
            Cycles cost = 0;
            bool planned =
                std::find(planned_cores_.begin(), planned_cores_.end(),
                          core) != planned_cores_.end();
            if (!planned)
                return 0;
            if (eager && prev != nullptr &&
                prev->process().pid() == target_pid_ &&
                kernel.tracer(core).enabled()) {
                cost += kernel.tracer(core).disable(now).cost;
                core_enabled_[static_cast<std::size_t>(core)] = false;
                ++control_ops_;
                ++msr_writes_;
            }
            if (next == nullptr ||
                next->process().pid() != target_pid_)
                return cost;
            if (core_enabled_[static_cast<std::size_t>(core)])
                return cost;  // already armed: zero-cost fast path
            auto res = kernel.tracer(core).enable(
                now, cr3, next->currentAddress());
            core_enabled_[static_cast<std::size_t>(core)] = true;
            if (std::find(enabled_cores_.begin(), enabled_cores_.end(),
                          core) == enabled_cores_.end())
                enabled_cores_.push_back(core);
            ++control_ops_;
            ++msr_writes_;
            return cost + res.cost;
        });

    // Target threads already on-core when tracing begins.
    for (int c = 0; c < kernel.numCores(); ++c) {
        Thread *t = kernel.runningOn(c);
        if (t && t->process().pid() == target_pid_ &&
            std::find(planned_cores_.begin(), planned_cores_.end(),
                      c) != planned_cores_.end() &&
            !core_enabled_[static_cast<std::size_t>(c)]) {
            auto res =
                kernel.tracer(c).enable(kernel.now(), cr3,
                                        t->currentAddress());
            facility_cycles_ += res.cost;
            core_enabled_[static_cast<std::size_t>(c)] = true;
            enabled_cores_.push_back(c);
            ++control_ops_;
            ++msr_writes_;
        }
    }

    // HRT bounding the period: proactive termination for robustness.
    auto on_stop = cfg.on_stop;
    kernel.setTimer(kernel.now() + cfg.period,
                    [this, &kernel, on_stop] {
                        stop(kernel);
                        if (on_stop)
                            on_stop();
                    });
}

void
OperationAwareController::stop(Kernel &kernel)
{
    if (stopped_)
        return;
    stopped_ = true;
    if (hook_id_ != 0) {
        kernel.removeSchedSwitchHook(hook_id_);
        hook_id_ = 0;
    }
    kernel.disarmSwitchLog();
    // Disable the tracers of all scheduled cores: prevents infinite
    // tracing and improves robustness (paper §3.2).
    for (CoreId c : enabled_cores_) {
        auto res = kernel.tracer(c).disable(kernel.now());
        facility_cycles_ += res.cost;
        ++msr_writes_;
        ++control_ops_;
    }
}

}  // namespace exist
