#include "core/rco.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace exist {

double
RepetitionAwareCoverageOptimizer::complexity(const AppDeployment &d) const
{
    // Binary size normalized on a log scale: 1 MB -> 0, 1 GB -> 1.
    double mb = static_cast<double>(d.binary_bytes) / (1024.0 * 1024.0);
    double size_term =
        std::clamp(std::log10(std::max(mb, 1.0)) / 3.0, 0.0, 1.0);
    double incident_term =
        std::min(static_cast<double>(d.past_incidents), 10.0) / 10.0;
    double c = cfg_.w_priority * std::clamp(d.priority, 0.0, 1.0) +
               cfg_.w_size * size_term +
               cfg_.w_incidents * incident_term;
    double wsum = cfg_.w_priority + cfg_.w_size + cfg_.w_incidents;
    return wsum > 0 ? c / wsum : 0.0;
}

Cycles
RepetitionAwareCoverageOptimizer::decidePeriod(const AppDeployment &d) const
{
    double c = complexity(d);
    auto period = static_cast<Cycles>(
        static_cast<double>(cfg_.min_period) +
        c * static_cast<double>(cfg_.max_period - cfg_.min_period));
    // Jointly bound by the measured reference overhead: if tracing this
    // app costs more than the budget, shorten the period accordingly.
    if (d.reference_overhead > cfg_.overhead_budget) {
        double shrink = cfg_.overhead_budget / d.reference_overhead;
        period = std::max(
            cfg_.min_period,
            static_cast<Cycles>(static_cast<double>(period) * shrink));
    }
    return std::clamp(period, cfg_.min_period, cfg_.max_period);
}

int
RepetitionAwareCoverageOptimizer::decideRepetitions(
    const AppDeployment &d) const
{
    if (d.anomaly)
        return d.replicas;  // abnormal behaviour is distinct: trace all
    // Density x priority scaled fraction; broader deployments and
    // higher priorities get more repetitions.
    double density = std::log2(std::max(1.0,
        static_cast<double>(d.replicas)));
    double frac = cfg_.max_profile_fraction *
                  std::clamp(d.priority, 0.0, 1.0) *
                  std::min(1.0, density / 6.0 + 0.3);
    int n = static_cast<int>(
        std::ceil(frac * static_cast<double>(d.replicas)));
    n = std::max(n, cfg_.deployment_threshold);
    return std::min(n, d.replicas);
}

std::vector<int>
RepetitionAwareCoverageOptimizer::selectWorkers(const AppDeployment &d,
                                                Rng &rng) const
{
    int n = decideRepetitions(d);
    std::vector<int> all(static_cast<std::size_t>(d.replicas));
    for (int i = 0; i < d.replicas; ++i)
        all[static_cast<std::size_t>(i)] = i;
    // Partial Fisher-Yates for an unbiased sample.
    for (int i = 0; i < n; ++i) {
        auto j = static_cast<std::size_t>(
            i + static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(d.replicas - i))));
        std::swap(all[static_cast<std::size_t>(i)], all[j]);
    }
    all.resize(static_cast<std::size_t>(n));
    std::sort(all.begin(), all.end());
    return all;
}

void
CoverageLedger::recordRequest(const std::string &app,
                              std::uint64_t sessions, Cycles period,
                              std::uint64_t trace_bytes)
{
    AppCoverage &cov = apps_[app];
    cov.requests += 1;
    cov.sessions += sessions;
    cov.trace_bytes += trace_bytes;
    cov.last_period = period;
    total_requests_ += 1;
    total_sessions_ += sessions;
}

const CoverageLedger::AppCoverage *
CoverageLedger::find(const std::string &app) const
{
    auto it = apps_.find(app);
    return it == apps_.end() ? nullptr : &it->second;
}

}  // namespace exist
