#include "core/uma.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace exist {

namespace {

constexpr std::uint64_t kMb = 1024ull * 1024;

std::uint64_t
clampBytes(double bytes, const UmaConfig &cfg)
{
    double lo = static_cast<double>(cfg.min_core_buffer_mb * kMb);
    double hi = static_cast<double>(cfg.max_core_buffer_mb * kMb);
    return static_cast<std::uint64_t>(std::clamp(bytes, lo, hi));
}

}  // namespace

UmaPlan
UsageAwareMemoryAllocator::plan(const Kernel &kernel,
                                const Process &target,
                                const UmaConfig &cfg)
{
    UmaPlan plan;
    const std::vector<CoreId> &mcs = target.allowedCores();
    plan.mapped_cores = mcs.size();
    EXIST_ASSERT(!mcs.empty(), "target process has no mapped cores");

    const double budget =
        static_cast<double>(cfg.budget_mb * kMb);

    if (target.profile().provision == ProvisionMode::kCpuSet) {
        // MCS == TCS: equal split of the budget across the set.
        double per_core = budget / static_cast<double>(mcs.size());
        for (CoreId c : mcs)
            plan.allocations.push_back(
                CoreAllocation{c, clampBytes(per_core, cfg)});
    } else {
        // CPU-share: sample the TCS.
        double ratio = cfg.sample_ratio > 0.0 ? cfg.sample_ratio
                                              : kDefaultShareRatio;
        std::size_t want = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(ratio * static_cast<double>(mcs.size()))));
        want = std::min(want, mcs.size());

        // Utilization estimate per mapped core (busy fraction so far).
        Cycles now = std::max<Cycles>(kernel.now(), 1);
        std::vector<std::pair<CoreId, double>> util;
        util.reserve(mcs.size());
        for (CoreId c : mcs) {
            double u = static_cast<double>(kernel.coreBusyCycles(c)) /
                       static_cast<double>(now);
            util.emplace_back(c, std::min(u, 1.0));
        }

        // Compulsory members: cores currently running the target.
        std::vector<CoreId> tcs;
        auto contains = [&tcs](CoreId c) {
            return std::find(tcs.begin(), tcs.end(), c) != tcs.end();
        };
        for (CoreId c : mcs) {
            const Thread *t = kernel.runningOn(c);
            if (t && t->process().pid() == target.pid() && !contains(c))
                tcs.push_back(c);
        }
        // Recently-used cores of the target's threads.
        for (const Thread *t : target.threads()) {
            CoreId c = t->lastCore();
            if (tcs.size() >= want)
                break;
            if (c != kInvalidId && !contains(c) &&
                std::find(mcs.begin(), mcs.end(), c) != mcs.end())
                tcs.push_back(c);
        }
        // Fill the rest with randomly selected cores biased toward low
        // utilization (empirically more likely to be scheduled into).
        Rng rng(cfg.seed);
        std::vector<std::pair<CoreId, double>> rest;
        for (auto &[c, u] : util)
            if (!contains(c))
                rest.emplace_back(c, u);
        std::sort(rest.begin(), rest.end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
        std::size_t idx = 0;
        while (tcs.size() < want && idx < rest.size()) {
            // Take from the low-utilization half preferentially.
            std::size_t pick =
                rng.bernoulli(0.75)
                    ? idx
                    : idx + rng.uniformInt(rest.size() - idx);
            std::swap(rest[idx], rest[pick]);
            tcs.push_back(rest[idx].first);
            ++idx;
        }

        // Buffer sizes: inversely proportional to utilization.
        double wsum = 0.0;
        std::vector<double> weights(tcs.size());
        for (std::size_t i = 0; i < tcs.size(); ++i) {
            double u = 0.0;
            for (auto &[c, uu] : util)
                if (c == tcs[i])
                    u = uu;
            weights[i] = 1.1 - u;
            wsum += weights[i];
        }
        for (std::size_t i = 0; i < tcs.size(); ++i) {
            double bytes = budget * weights[i] / wsum;
            plan.allocations.push_back(
                CoreAllocation{tcs[i], clampBytes(bytes, cfg)});
        }
    }

    for (const auto &a : plan.allocations)
        plan.total_real_bytes += a.real_bytes;
    return plan;
}

}  // namespace exist
