/**
 * @file
 * RCO — Repetition-aware Coverage Optimizer (paper §3.4). Cluster-level
 * policy over application metadata:
 *
 *  - The temporal decider picks a tracing period from a weighted sum of
 *    complexity factors: operator-defined priority, binary size, and
 *    the number of previous stability issues.
 *  - The spatial sampler picks which repetitions (replicas) to trace:
 *    all of them for anomaly requests; a density- and priority-scaled
 *    fraction for routine profiling, with a deployment threshold
 *    guaranteeing observation of single-replica applications.
 */
#ifndef EXIST_CORE_RCO_H
#define EXIST_CORE_RCO_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace exist {

/** Cluster-visible metadata of one deployed application. */
struct AppDeployment {
    std::string app;
    double priority = 0.5;           ///< [0,1]
    std::uint64_t binary_bytes = 0;
    int past_incidents = 0;
    int replicas = 1;
    /** True when the request was triggered by a detected anomaly. */
    bool anomaly = false;
    /** Measured reference monitoring overhead (fraction), fed back from
     *  previous sessions to bound the tracing settings. */
    double reference_overhead = 0.001;
};

struct RcoConfig {
    double w_priority = 0.4;
    double w_size = 0.3;
    double w_incidents = 0.3;
    Cycles min_period = secondsToCycles(0.1);
    Cycles max_period = secondsToCycles(2.0);
    /** Node overhead ceiling; periods shrink if the reference overhead
     *  exceeds it. */
    double overhead_budget = 0.002;
    /** Minimum repetitions traced regardless of policy. */
    int deployment_threshold = 1;
    /** Profiling fraction of replicas at priority 1.0. */
    double max_profile_fraction = 0.5;
};

class RepetitionAwareCoverageOptimizer
{
  public:
    explicit RepetitionAwareCoverageOptimizer(RcoConfig cfg = {})
        : cfg_(cfg)
    {
    }

    /** Application complexity in [0,1] (temporal decider input). */
    double complexity(const AppDeployment &d) const;

    /** Temporal decider: tracing period for this application. */
    Cycles decidePeriod(const AppDeployment &d) const;

    /** Spatial sampler: how many repetitions to trace. */
    int decideRepetitions(const AppDeployment &d) const;

    /** Pick the concrete worker indices (0..replicas-1) to trace. */
    std::vector<int> selectWorkers(const AppDeployment &d, Rng &rng) const;

    const RcoConfig &config() const { return cfg_; }

  private:
    RcoConfig cfg_;
};

/**
 * Cross-request coverage accounting for the RCO (paper §3.4): how much
 * observation each application has accumulated. Controllers record one
 * entry per completed TraceRequest *in request-id order* (the sharded
 * control plane sequences this through its commit log), so the ledger
 * contents are deterministic and identical between the serial and the
 * sharded reconcile paths for the same submit stream.
 */
class CoverageLedger
{
  public:
    struct AppCoverage {
        std::uint64_t requests = 0;  ///< completed TraceRequests
        std::uint64_t sessions = 0;  ///< worker-node sessions traced
        std::uint64_t trace_bytes = 0;
        Cycles last_period = 0;  ///< period of the latest request

        bool operator==(const AppCoverage &) const = default;
    };

    void recordRequest(const std::string &app, std::uint64_t sessions,
                       Cycles period, std::uint64_t trace_bytes);

    /** Per-app totals; nullptr when the app was never traced. */
    const AppCoverage *find(const std::string &app) const;

    std::uint64_t totalRequests() const { return total_requests_; }
    std::uint64_t totalSessions() const { return total_sessions_; }
    std::size_t appCount() const { return apps_.size(); }

    /** Full per-app view (durability snapshots serialize this). */
    const std::map<std::string, AppCoverage> &apps() const
    {
        return apps_;
    }

    /** Recovery-only: install totals wholesale from a snapshot image
     *  (recordRequest would double-count replayed deltas). */
    void
    restore(std::map<std::string, AppCoverage> apps,
            std::uint64_t total_requests, std::uint64_t total_sessions)
    {
        apps_ = std::move(apps);
        total_requests_ = total_requests;
        total_sessions_ = total_sessions;
    }

    bool operator==(const CoverageLedger &) const = default;

  private:
    std::map<std::string, AppCoverage> apps_;
    std::uint64_t total_requests_ = 0;
    std::uint64_t total_sessions_ = 0;
};

}  // namespace exist

#endif  // EXIST_CORE_RCO_H
