/**
 * @file
 * RCO — Repetition-aware Coverage Optimizer (paper §3.4). Cluster-level
 * policy over application metadata:
 *
 *  - The temporal decider picks a tracing period from a weighted sum of
 *    complexity factors: operator-defined priority, binary size, and
 *    the number of previous stability issues.
 *  - The spatial sampler picks which repetitions (replicas) to trace:
 *    all of them for anomaly requests; a density- and priority-scaled
 *    fraction for routine profiling, with a deployment threshold
 *    guaranteeing observation of single-replica applications.
 */
#ifndef EXIST_CORE_RCO_H
#define EXIST_CORE_RCO_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace exist {

/** Cluster-visible metadata of one deployed application. */
struct AppDeployment {
    std::string app;
    double priority = 0.5;           ///< [0,1]
    std::uint64_t binary_bytes = 0;
    int past_incidents = 0;
    int replicas = 1;
    /** True when the request was triggered by a detected anomaly. */
    bool anomaly = false;
    /** Measured reference monitoring overhead (fraction), fed back from
     *  previous sessions to bound the tracing settings. */
    double reference_overhead = 0.001;
};

struct RcoConfig {
    double w_priority = 0.4;
    double w_size = 0.3;
    double w_incidents = 0.3;
    Cycles min_period = secondsToCycles(0.1);
    Cycles max_period = secondsToCycles(2.0);
    /** Node overhead ceiling; periods shrink if the reference overhead
     *  exceeds it. */
    double overhead_budget = 0.002;
    /** Minimum repetitions traced regardless of policy. */
    int deployment_threshold = 1;
    /** Profiling fraction of replicas at priority 1.0. */
    double max_profile_fraction = 0.5;
};

class RepetitionAwareCoverageOptimizer
{
  public:
    explicit RepetitionAwareCoverageOptimizer(RcoConfig cfg = {})
        : cfg_(cfg)
    {
    }

    /** Application complexity in [0,1] (temporal decider input). */
    double complexity(const AppDeployment &d) const;

    /** Temporal decider: tracing period for this application. */
    Cycles decidePeriod(const AppDeployment &d) const;

    /** Spatial sampler: how many repetitions to trace. */
    int decideRepetitions(const AppDeployment &d) const;

    /** Pick the concrete worker indices (0..replicas-1) to trace. */
    std::vector<int> selectWorkers(const AppDeployment &d, Rng &rng) const;

    const RcoConfig &config() const { return cfg_; }

  private:
    RcoConfig cfg_;
};

}  // namespace exist

#endif  // EXIST_CORE_RCO_H
