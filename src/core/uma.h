/**
 * @file
 * UMA — Usage-aware Memory Allocator (paper §3.3). Decides, at tracing
 * start, which cores get trace buffers (the Traced Core Set) and how
 * big each per-core buffer is, given the node facility's memory budget
 * and the target pod's provisioning mode:
 *
 *  - CPU-set pods: TCS = mapped core set, budget split equally.
 *  - CPU-share pods: a core sampler picks the cores currently running
 *    the target plus randomly selected cores biased toward low
 *    utilization; lower-utilization cores (more likely to be scheduled
 *    into) receive bigger buffers.
 */
#ifndef EXIST_CORE_UMA_H
#define EXIST_CORE_UMA_H

#include <cstdint>
#include <vector>

#include "os/kernel.h"
#include "util/rng.h"
#include "util/types.h"

namespace exist {

struct UmaConfig {
    std::uint64_t budget_mb = 500;
    std::uint64_t min_core_buffer_mb = 4;
    std::uint64_t max_core_buffer_mb = 128;
    /** Fraction of the mapped core set to trace for CPU-share pods;
     *  0 selects the policy default. */
    double sample_ratio = 0.0;
    std::uint64_t seed = 0x5eed;
};

/** One per-core buffer decision. */
struct CoreAllocation {
    CoreId core = kInvalidId;
    std::uint64_t real_bytes = 0;
};

struct UmaPlan {
    std::vector<CoreAllocation> allocations;
    std::uint64_t total_real_bytes = 0;
    std::size_t mapped_cores = 0;  ///< |MCS| for reporting
};

class UsageAwareMemoryAllocator
{
  public:
    /** Build an allocation plan for tracing `target` on `kernel` now. */
    static UmaPlan plan(const Kernel &kernel, const Process &target,
                        const UmaConfig &cfg);

    /** Default CPU-share sampling ratio. */
    static constexpr double kDefaultShareRatio = 0.5;
};

}  // namespace exist

#endif  // EXIST_CORE_UMA_H
