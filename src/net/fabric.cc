#include "net/fabric.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist::net {

namespace {

/** Sim node id as recorded in obs events (16-bit field; the master's
 *  sentinel node collapses onto 0xffff, named "sim master" at export). */
std::uint32_t
obsNode(NodeId node)
{
    auto v = static_cast<std::uint64_t>(static_cast<std::int64_t>(node));
    return v >= 0xffff ? 0xffffu : static_cast<std::uint32_t>(v);
}

}  // namespace

Fabric::Fabric(EventQueue *queue, const NetSpec &spec,
               std::uint64_t seed)
    : queue_(queue), spec_(spec), seed_(seed)
{
}

std::uint64_t
Fabric::linkSeed(std::uint64_t seed, NodeId src, NodeId dst)
{
    // Two dependent splitmix64 steps over (seed, src, dst): adjacent
    // links land in statistically independent streams, and the stream
    // depends only on the key — never on link creation order.
    std::uint64_t sm =
        seed ^ (static_cast<std::uint64_t>(static_cast<std::int64_t>(src)) *
                0x9e3779b97f4a7c15ULL);
    std::uint64_t base = splitmix64(sm);
    sm = base ^ (static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)) *
                 0xd1342543de82ef95ULL);
    return splitmix64(sm);
}

void
Fabric::attach(NodeId node, DeliverFn on_delivery)
{
    Endpoint &ep = endpoints_[node];
    EXIST_ASSERT(!ep.deliver, "fabric node %d attached twice", node);
    ep.deliver = std::move(on_delivery);
}

Fabric::Link &
Fabric::linkFor(NodeId src, NodeId dst)
{
    auto key = std::make_pair(src, dst);
    auto it = links_.find(key);
    if (it == links_.end())
        it = links_.emplace(key, Link(linkSeed(seed_, src, dst))).first;
    return it->second;
}

std::size_t
Fabric::ingressDepth(NodeId node) const
{
    auto it = endpoints_.find(node);
    return it == endpoints_.end() ? 0 : it->second.ingress_depth;
}

void
Fabric::logEvent(Cycles at, WireEvent::Kind kind, NodeId src,
                 NodeId dst, std::uint64_t frame_id, std::size_t bytes)
{
    if (!spec_.record_wire_log)
        return;
    wire_log_.push_back(WireEvent{at, kind, src, dst, frame_id,
                                  static_cast<std::uint32_t>(bytes)});
}

void
Fabric::send(NodeId src, NodeId dst, std::vector<std::uint8_t> frame)
{
    auto src_it = endpoints_.find(src);
    auto dst_it = endpoints_.find(dst);
    EXIST_ASSERT(src_it != endpoints_.end(), "send from unattached %d",
                 src);
    EXIST_ASSERT(dst_it != endpoints_.end(), "send to unattached %d",
                 dst);
    Link &link = linkFor(src, dst);
    const std::uint64_t frame_id = next_frame_id_++;

    // NIC serialization: the egress queue drains at bandwidth_gbps,
    // so back-to-back sends from one node queue behind each other.
    double gbps = spec_.bandwidth_gbps > 0 ? spec_.bandwidth_gbps : 10.0;
    double wire_us =
        static_cast<double>(frame.size()) * 8.0 / (gbps * 1000.0);
    Cycles depart =
        std::max(queue_->now(), src_it->second.egress_busy_until) +
        usToCycles(wire_us);
    src_it->second.egress_busy_until = depart;

    stats_.frames_sent += 1;
    stats_.bytes_on_wire += frame.size();
    logEvent(queue_->now(), WireEvent::Kind::kSend, src, dst, frame_id,
             frame.size());
    // Sim-clock telemetry: the corr id derives only from (fabric seed,
    // link, frame counter), so traces of the same seed are identical.
    const std::uint64_t obs_corr =
        obs::corrId(seed_, linkSeed(0, src, dst), frame_id);
    obs::simInstant("net.send", obs_corr, queue_->now(), obsNode(src),
                    static_cast<std::uint32_t>(frame.size()));

    if (spec_.drop_rate > 0 && link.rng.bernoulli(spec_.drop_rate)) {
        stats_.frames_dropped += 1;
        logEvent(depart, WireEvent::Kind::kDrop, src, dst, frame_id,
                 frame.size());
        obs::simInstant("net.drop", obs_corr, depart, obsNode(src));
        return;
    }

    Cycles arrive = depart + usToCycles(spec_.link_latency_us);
    if (spec_.jitter_us > 0)
        arrive += usToCycles(link.rng.uniform(0.0, spec_.jitter_us));
    if (spec_.reorder_rate > 0 &&
        link.rng.bernoulli(spec_.reorder_rate)) {
        stats_.frames_reordered += 1;
        arrive +=
            usToCycles(link.rng.uniform(0.0, spec_.reorder_window_us));
    }

    bool duplicate = spec_.duplicate_rate > 0 &&
                     link.rng.bernoulli(spec_.duplicate_rate);
    if (duplicate) {
        stats_.frames_duplicated += 1;
        Cycles dup_arrive =
            arrive + usToCycles(link.rng.uniform(
                         0.0, spec_.jitter_us > 0 ? spec_.jitter_us
                                                  : 1.0));
        logEvent(depart, WireEvent::Kind::kDuplicate, src, dst,
                 frame_id, frame.size());
        scheduleDelivery(src, dst, queue_->now(), dup_arrive, frame_id,
                         frame);  // copy; the original moves below
    }
    scheduleDelivery(src, dst, queue_->now(), arrive, frame_id,
                     std::move(frame));
}

void
Fabric::scheduleDelivery(NodeId src, NodeId dst, Cycles depart,
                         Cycles arrive, std::uint64_t frame_id,
                         std::vector<std::uint8_t> frame)
{
    Endpoint &ep = endpoints_[dst];
    ep.ingress_depth += 1;
    queue_->schedule(
        arrive, [this, src, dst, depart, arrive, frame_id,
                 frame = std::move(frame)]() {
            Endpoint &dep = endpoints_[dst];
            dep.ingress_depth -= 1;
            stats_.frames_delivered += 1;
            stats_.delivery_us.push_back(
                cyclesToSeconds(arrive - depart) * 1e6);
            logEvent(arrive, WireEvent::Kind::kDeliver, src, dst,
                     frame_id, frame.size());
            // Runs on the event loop: emission is lock-free by design
            // (the analyzer's event-block check keeps it that way).
            std::uint64_t obs_corr =
                obs::corrId(seed_, linkSeed(0, src, dst), frame_id);
            obs::simSpan("net.frame", obs_corr, depart, arrive - depart,
                         obsNode(src));
            obs::simInstant("net.deliver", obs_corr, arrive,
                            obsNode(dst),
                            static_cast<std::uint32_t>(frame.size()));
            if (dep.deliver)
                dep.deliver(src, frame);
        });
}

std::string
Fabric::wireLogText() const
{
    std::string out;
    out.reserve(wire_log_.size() * 48);
    for (const WireEvent &e : wire_log_) {
        char line[96];
        const char *kind = "?";
        switch (e.kind) {
          case WireEvent::Kind::kSend: kind = "SEND"; break;
          case WireEvent::Kind::kDrop: kind = "DROP"; break;
          case WireEvent::Kind::kDuplicate: kind = "DUP "; break;
          case WireEvent::Kind::kDeliver: kind = "DLVR"; break;
        }
        std::snprintf(line, sizeof line,
                      "%llu %s %d->%d #%llu %u\n",
                      (unsigned long long)e.at, kind, e.src, e.dst,
                      (unsigned long long)e.frame_id, e.bytes);
        out += line;
    }
    return out;
}

}  // namespace exist::net
