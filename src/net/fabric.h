/**
 * @file
 * Deterministic simulated datacenter fabric for the collection plane
 * (ISSUE 6 / paper §3.4, §4): node agents and the master ingest
 * attach as endpoints; frames sent between them experience NIC
 * serialization (per-node egress queue, bandwidth-bounded), link
 * latency + jitter, and configurable drop / reorder / duplicate
 * faults, all scheduled on a sim/EventQueue in virtual time.
 *
 * Determinism contract (tools/determinism_lint.py + the wire-log
 * regression test): every stochastic decision — jitter, drop,
 * reorder, duplicate — is drawn from a per-link util/rng.h stream
 * seeded by splitmix64 over (fabric seed, src node, dst node), so the
 * fault pattern is a pure function of the seed and the traffic, never
 * of host scheduling. Two runs at one seed produce byte-identical
 * wire-level event logs.
 *
 * The fabric is single-threaded by design: it is driven entirely by
 * the owning EventQueue, so it carries no mutex (DESIGN.md §10). The
 * thread-safe pieces of the collection plane are the endpoints
 * (agent/trace_agent.h, cluster/ingest.h).
 */
#ifndef EXIST_NET_FABRIC_H
#define EXIST_NET_FABRIC_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/types.h"

namespace exist::net {

/**
 * Collection-plane transport knobs. Travels on ExperimentSpec (the
 * Testbed wiring) and on TraceRequest CRDs as net=true loss=...
 * (the cluster wiring); NetSpec{} with enabled=false is the
 * historical in-process hand-off.
 */
struct NetSpec {
    bool enabled = false;
    /** Per-frame drop probability on every link. */
    double drop_rate = 0.0;
    /** Probability a delivered frame is held back long enough to be
     *  overtaken (extra uniform delay up to reorder_window_us). */
    double reorder_rate = 0.0;
    /** Probability a delivered frame arrives twice. */
    double duplicate_rate = 0.0;
    double link_latency_us = 50.0;
    double jitter_us = 5.0;          ///< uniform [0, jitter) extra
    double reorder_window_us = 400.0;
    double bandwidth_gbps = 10.0;    ///< egress serialization rate
    /** Record the wire-level event log (determinism regression). */
    bool record_wire_log = false;

    bool operator==(const NetSpec &) const = default;
};

/** One wire-level event, for the determinism regression log. */
struct WireEvent {
    enum class Kind : std::uint8_t { kSend, kDrop, kDuplicate, kDeliver };
    Cycles at = 0;
    Kind kind = Kind::kSend;
    NodeId src = kInvalidId;
    NodeId dst = kInvalidId;
    std::uint64_t frame_id = 0;
    std::uint32_t bytes = 0;
};

/** Fabric-level counters, exported into the net.* metrics scope by
 *  the collection plane (the fabric itself stays metrics-free so the
 *  net library depends only on sim + util). */
struct FabricStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_reordered = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t bytes_on_wire = 0;
    /** Virtual send->deliver latencies (us) of delivered frames, in
     *  delivery order. */
    std::vector<double> delivery_us;
};

class Fabric
{
  public:
    /** Deliver callback: (source node, frame bytes). */
    using DeliverFn =
        std::function<void(NodeId, const std::vector<std::uint8_t> &)>;

    Fabric(EventQueue *queue, const NetSpec &spec, std::uint64_t seed);

    /** Register an endpoint. One callback per node id. */
    void attach(NodeId node, DeliverFn on_delivery);

    /**
     * Ship one frame. The frame serializes through `src`'s egress
     * queue at the configured bandwidth, crosses the link (latency +
     * jitter, possibly dropped / reordered / duplicated), and is
     * delivered to `dst`'s callback via the event queue.
     */
    void send(NodeId src, NodeId dst, std::vector<std::uint8_t> frame);

    const NetSpec &spec() const { return spec_; }
    const FabricStats &stats() const { return stats_; }
    /** Depth of a node's ingress queue (frames scheduled, not yet
     *  delivered). */
    std::size_t ingressDepth(NodeId node) const;

    const std::vector<WireEvent> &wireLog() const { return wire_log_; }
    /** Render the wire log one event per line (regression compare). */
    std::string wireLogText() const;

    /** The per-link RNG stream seed: splitmix64(seed, src, dst). */
    static std::uint64_t linkSeed(std::uint64_t seed, NodeId src,
                                  NodeId dst);

  private:
    struct Link {
        Rng rng;
        explicit Link(std::uint64_t seed) : rng(seed) {}
    };
    struct Endpoint {
        DeliverFn deliver;
        Cycles egress_busy_until = 0;  ///< NIC serialization horizon
        std::size_t ingress_depth = 0;
    };

    Link &linkFor(NodeId src, NodeId dst);
    void scheduleDelivery(NodeId src, NodeId dst, Cycles depart,
                          Cycles arrive, std::uint64_t frame_id,
                          std::vector<std::uint8_t> frame);
    void logEvent(Cycles at, WireEvent::Kind kind, NodeId src,
                  NodeId dst, std::uint64_t frame_id,
                  std::size_t bytes);

    EventQueue *queue_;
    NetSpec spec_;
    std::uint64_t seed_;
    std::map<NodeId, Endpoint> endpoints_;
    std::map<std::pair<NodeId, NodeId>, Link> links_;
    FabricStats stats_;
    std::vector<WireEvent> wire_log_;
    std::uint64_t next_frame_id_ = 1;
};

}  // namespace exist::net

#endif  // EXIST_NET_FABRIC_H
