#include "net/frame.h"

#include "net/wire.h"

namespace exist::net {

namespace {

/** Wrap a serialized message body in the frame envelope. */
std::vector<std::uint8_t>
seal(MsgType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(kFrameHeaderBytes + payload.size());
    ByteWriter w(&out);
    w.putU32(kFrameMagic);
    w.putU8(kFrameVersion);
    w.putU8(static_cast<std::uint8_t>(type));
    w.putU32(static_cast<std::uint32_t>(payload.size()));
    w.putU64(fnv1a64(payload.data(), payload.size()));
    w.putBytes(payload.data(), payload.size());
    return out;
}

bool
parseBatch(ByteReader &r, TraceRegionBatchMsg *msg)
{
    msg->node = static_cast<NodeId>(r.getSVarint());
    msg->stream = r.getVarint();
    msg->batch_seq = r.getVarint();
    msg->total_batches = r.getVarint();
    std::uint64_t n = r.getVarint();
    if (!r.ok() || n != r.remaining())
        return false;
    const std::uint8_t *p = r.getBytes(n);
    if (p == nullptr)
        return false;
    msg->chunk.assign(p, p + n);
    return true;
}

bool
parseReport(ByteReader &r, BehaviorReportMsg *msg)
{
    msg->node = static_cast<NodeId>(r.getSVarint());
    msg->stream = r.getVarint();
    msg->degraded = r.getU8() != 0;
    msg->batches_spilled = r.getVarint();
    msg->summary = r.getString();
    return r.ok() && r.remaining() == 0;
}

bool
parseAck(ByteReader &r, AckMsg *msg)
{
    msg->node = static_cast<NodeId>(r.getSVarint());
    msg->stream = r.getVarint();
    msg->batch_seq = r.getVarint();
    msg->cumulative = r.getVarint();
    msg->window = static_cast<std::uint32_t>(r.getVarint());
    return r.ok() && r.remaining() == 0;
}

bool
parseHeartbeat(ByteReader &r, HeartbeatMsg *msg)
{
    msg->node = static_cast<NodeId>(r.getSVarint());
    msg->seq = r.getVarint();
    msg->queue_depth = r.getVarint();
    return r.ok() && r.remaining() == 0;
}

}  // namespace

const char *
decodeStatusName(DecodeStatus s)
{
    switch (s) {
      case DecodeStatus::kOk: return "ok";
      case DecodeStatus::kTruncated: return "truncated";
      case DecodeStatus::kBadMagic: return "bad-magic";
      case DecodeStatus::kBadVersion: return "bad-version";
      case DecodeStatus::kBadLength: return "bad-length";
      case DecodeStatus::kBadChecksum: return "bad-checksum";
      case DecodeStatus::kBadPayload: return "bad-payload";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeFrame(const TraceRegionBatchMsg &msg)
{
    std::vector<std::uint8_t> payload;
    ByteWriter w(&payload);
    w.putSVarint(msg.node);
    w.putVarint(msg.stream);
    w.putVarint(msg.batch_seq);
    w.putVarint(msg.total_batches);
    w.putVarint(msg.chunk.size());
    w.putBytes(msg.chunk.data(), msg.chunk.size());
    return seal(MsgType::kTraceRegionBatch, payload);
}

std::vector<std::uint8_t>
encodeFrame(const BehaviorReportMsg &msg)
{
    std::vector<std::uint8_t> payload;
    ByteWriter w(&payload);
    w.putSVarint(msg.node);
    w.putVarint(msg.stream);
    w.putU8(msg.degraded ? 1 : 0);
    w.putVarint(msg.batches_spilled);
    w.putString(msg.summary);
    return seal(MsgType::kBehaviorReport, payload);
}

std::vector<std::uint8_t>
encodeFrame(const AckMsg &msg)
{
    std::vector<std::uint8_t> payload;
    ByteWriter w(&payload);
    w.putSVarint(msg.node);
    w.putVarint(msg.stream);
    w.putVarint(msg.batch_seq);
    w.putVarint(msg.cumulative);
    w.putVarint(msg.window);
    return seal(MsgType::kAck, payload);
}

std::vector<std::uint8_t>
encodeFrame(const HeartbeatMsg &msg)
{
    std::vector<std::uint8_t> payload;
    ByteWriter w(&payload);
    w.putSVarint(msg.node);
    w.putVarint(msg.seq);
    w.putVarint(msg.queue_depth);
    return seal(MsgType::kHeartbeat, payload);
}

DecodeStatus
decodeFrame(const std::uint8_t *data, std::size_t size, Frame *frame,
            std::size_t *consumed)
{
    *consumed = 0;
    if (size < kFrameHeaderBytes)
        return DecodeStatus::kTruncated;
    ByteReader header(data, kFrameHeaderBytes);
    if (header.getU32() != kFrameMagic)
        return DecodeStatus::kBadMagic;
    if (header.getU8() != kFrameVersion)
        return DecodeStatus::kBadVersion;
    std::uint8_t type = header.getU8();
    std::uint32_t length = header.getU32();
    std::uint64_t check = header.getU64();
    if (length > kMaxFramePayload)
        return DecodeStatus::kBadLength;
    if (size - kFrameHeaderBytes < length)
        return DecodeStatus::kTruncated;
    const std::uint8_t *payload = data + kFrameHeaderBytes;
    if (fnv1a64(payload, length) != check)
        return DecodeStatus::kBadChecksum;

    ByteReader body(payload, length);
    bool ok = false;
    switch (static_cast<MsgType>(type)) {
      case MsgType::kTraceRegionBatch:
        frame->type = MsgType::kTraceRegionBatch;
        ok = parseBatch(body, &frame->batch);
        break;
      case MsgType::kBehaviorReport:
        frame->type = MsgType::kBehaviorReport;
        ok = parseReport(body, &frame->report);
        break;
      case MsgType::kAck:
        frame->type = MsgType::kAck;
        ok = parseAck(body, &frame->ack);
        break;
      case MsgType::kHeartbeat:
        frame->type = MsgType::kHeartbeat;
        ok = parseHeartbeat(body, &frame->heartbeat);
        break;
      default:
        return DecodeStatus::kBadPayload;
    }
    if (!ok)
        return DecodeStatus::kBadPayload;
    *consumed = kFrameHeaderBytes + length;
    return DecodeStatus::kOk;
}

}  // namespace exist::net
