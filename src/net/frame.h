/**
 * @file
 * The collection-plane wire protocol: a length-prefixed, checksummed
 * frame envelope carrying one of four message types —
 *
 *   TraceRegionBatch  node -> master: one sequenced chunk of a
 *                     serialized session payload (delta-encoded by
 *                     the payload layer above)
 *   BehaviorReport    node -> master: the stream finale — a compact
 *                     per-node behaviour summary; in degraded mode it
 *                     is what survives spill-and-summarize
 *   Ack               master -> node: selective ack for one batch,
 *                     plus the cumulative contiguous sequence and the
 *                     receive-window credit (backpressure signal)
 *   Heartbeat         node -> master: liveness + queue depth while a
 *                     stream is in flight
 *
 * Frame layout (little-endian):
 *
 *   magic   u32  'E''X''F''R'
 *   version u8
 *   type    u8   MsgType
 *   length  u32  payload byte count
 *   check   u64  FNV-1a over the payload bytes
 *   payload length bytes
 *
 * decodeFrame() never over-reads: truncated input reports kTruncated,
 * a flipped payload byte reports kBadChecksum, and the caller always
 * learns how many bytes a valid frame consumed, so frames parse out
 * of a concatenated buffer too (tests/fuzz_test.cc drives all three
 * properties with random corruption).
 */
#ifndef EXIST_NET_FRAME_H
#define EXIST_NET_FRAME_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace exist::net {

enum class MsgType : std::uint8_t {
    kTraceRegionBatch = 1,
    kBehaviorReport = 2,
    kAck = 3,
    kHeartbeat = 4,
};

inline constexpr std::uint32_t kFrameMagic = 0x52465845u;  // "EXFR"
inline constexpr std::uint8_t kFrameVersion = 1;
/** magic + version + type + length + checksum. */
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 1 + 4 + 8;
/** Refuse absurd length prefixes before trusting them. */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Ack sequence number standing for the BehaviorReport finale. */
inline constexpr std::uint64_t kFinaleSeq = ~std::uint64_t{0};
/** Ack sequence number for a credit-only ack (heartbeat reply): it
 *  acknowledges no batch, only refreshes cumulative/window. */
inline constexpr std::uint64_t kCreditSeq = ~std::uint64_t{0} - 1;

/** One sequenced chunk of a node's serialized session payload. */
struct TraceRegionBatchMsg {
    NodeId node = kInvalidId;
    std::uint64_t stream = 0;     ///< session stream id on this node
    std::uint64_t batch_seq = 0;  ///< 0-based position in the stream
    std::uint64_t total_batches = 0;
    std::vector<std::uint8_t> chunk;
};

/** Stream finale: behaviour summary (+ degradation accounting). */
struct BehaviorReportMsg {
    NodeId node = kInvalidId;
    std::uint64_t stream = 0;
    bool degraded = false;           ///< spill-and-summarize happened
    std::uint64_t batches_spilled = 0;
    std::string summary;
};

/** Master -> node: selective ack + window credit. */
struct AckMsg {
    NodeId node = kInvalidId;     ///< the acked node (frame addressee)
    std::uint64_t stream = 0;
    std::uint64_t batch_seq = 0;  ///< the batch (or kFinaleSeq) acked
    std::uint64_t cumulative = 0; ///< batches received contiguously
    std::uint32_t window = 0;     ///< extra batches master will buffer
};

struct HeartbeatMsg {
    NodeId node = kInvalidId;
    std::uint64_t seq = 0;
    std::uint64_t queue_depth = 0;  ///< agent send-queue occupancy
};

/** A decoded frame: the envelope plus exactly one message body. */
struct Frame {
    MsgType type = MsgType::kHeartbeat;
    TraceRegionBatchMsg batch;
    BehaviorReportMsg report;
    AckMsg ack;
    HeartbeatMsg heartbeat;
};

enum class DecodeStatus {
    kOk,
    kTruncated,    ///< fewer bytes than header + length promise
    kBadMagic,
    kBadVersion,
    kBadLength,    ///< length prefix exceeds kMaxFramePayload
    kBadChecksum,  ///< payload bytes do not hash to the header check
    kBadPayload,   ///< checksum fine but the body fails to parse
};

const char *decodeStatusName(DecodeStatus s);

std::vector<std::uint8_t> encodeFrame(const TraceRegionBatchMsg &msg);
std::vector<std::uint8_t> encodeFrame(const BehaviorReportMsg &msg);
std::vector<std::uint8_t> encodeFrame(const AckMsg &msg);
std::vector<std::uint8_t> encodeFrame(const HeartbeatMsg &msg);

/**
 * Decode one frame from the front of `data`. On kOk, `*frame` holds
 * the message and `*consumed` the envelope + payload byte count; on
 * any error `*consumed` is 0 and `*frame` is unspecified.
 */
DecodeStatus decodeFrame(const std::uint8_t *data, std::size_t size,
                         Frame *frame, std::size_t *consumed);

}  // namespace exist::net

#endif  // EXIST_NET_FRAME_H
