/**
 * @file
 * Wire-format primitives shared by the frame codec and the payload
 * serializers: LEB128 varints, zigzag signed mapping, delta-encoded
 * unsigned arrays (the common case — function profiles — is nearly
 * sorted, so deltas varint-pack into a fraction of the raw bytes),
 * raw IEEE-754 doubles (bit-exact round trips, a requirement of the
 * byte-identical-reports invariant), and FNV-1a checksums.
 *
 * ByteReader is the safety boundary for everything arriving off the
 * simulated wire: every accessor bounds-checks and latches a failure
 * flag instead of over-reading, so corrupted or truncated frames
 * decode to "false", never to UB (tests/fuzz_test.cc hammers this).
 */
#ifndef EXIST_NET_WIRE_H
#define EXIST_NET_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace exist::net {

/** FNV-1a 64-bit checksum (the frame integrity check). */
inline std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Zigzag mapping so small negative ints varint-pack small. */
constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append-only serializer over a caller-owned byte vector. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> *out) : out_(out) {}

    void putU8(std::uint8_t v) { out_->push_back(v); }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** LEB128 unsigned varint (1 byte for < 128, the common case). */
    void
    putVarint(std::uint64_t v)
    {
        while (v >= 0x80) {
            out_->push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        out_->push_back(static_cast<std::uint8_t>(v));
    }

    void putSVarint(std::int64_t v) { putVarint(zigzag(v)); }

    /** Bit-exact double (the accuracy/CPI fields must round-trip). */
    void
    putDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        putU64(bits);
    }

    void
    putBytes(const std::uint8_t *data, std::size_t size)
    {
        out_->insert(out_->end(), data, data + size);
    }

    void
    putString(const std::string &s)
    {
        putVarint(s.size());
        putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
                 s.size());
    }

    /**
     * Delta-encoded unsigned array: length, first value, then zigzag
     * deltas between consecutive elements. Function-profile arrays are
     * smooth, so this is the agent's main wire-byte saving.
     */
    void
    putDeltaArray(const std::vector<std::uint64_t> &values)
    {
        putVarint(values.size());
        std::uint64_t prev = 0;
        for (std::uint64_t v : values) {
            putSVarint(static_cast<std::int64_t>(v) -
                       static_cast<std::int64_t>(prev));
            prev = v;
        }
    }

  private:
    std::vector<std::uint8_t> *out_;
};

/**
 * Bounds-checked deserializer. All accessors return a value *and*
 * keep an `ok()` flag: once a read would cross the end, ok() latches
 * false and every subsequent read returns zero values, so decoders
 * can parse straight-line and check once.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }
    std::size_t consumed() const { return pos_; }

    std::uint8_t
    getU8()
    {
        if (!require(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    getU32()
    {
        if (!require(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    getU64()
    {
        if (!require(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    getVarint()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (!require(1) || shift > 63) {
                ok_ = false;
                return 0;
            }
            std::uint8_t b = data_[pos_++];
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
        }
    }

    std::int64_t getSVarint() { return unzigzag(getVarint()); }

    double
    getDouble()
    {
        std::uint64_t bits = getU64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return ok_ ? v : 0.0;
    }

    /** Borrow `size` bytes in place (no copy); nullptr when short. */
    const std::uint8_t *
    getBytes(std::size_t size)
    {
        if (!require(size))
            return nullptr;
        const std::uint8_t *p = data_ + pos_;
        pos_ += size;
        return p;
    }

    std::string
    getString()
    {
        std::uint64_t n = getVarint();
        const std::uint8_t *p = getBytes(n);
        if (p == nullptr)
            return {};
        return std::string(reinterpret_cast<const char *>(p), n);
    }

    std::vector<std::uint64_t>
    getDeltaArray()
    {
        std::uint64_t n = getVarint();
        // Each element costs at least one wire byte; reject length
        // prefixes the buffer cannot possibly back (allocation bomb).
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return {};
        }
        std::vector<std::uint64_t> values;
        values.reserve(n);
        std::int64_t prev = 0;
        for (std::uint64_t i = 0; i < n && ok_; ++i) {
            prev += getSVarint();
            values.push_back(static_cast<std::uint64_t>(prev));
        }
        if (!ok_)
            return {};
        return values;
    }

  private:
    bool
    require(std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace exist::net

#endif  // EXIST_NET_WIRE_H
