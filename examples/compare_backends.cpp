/**
 * @file
 * Backend comparison on one workload: run the same deterministic node
 * under Oracle, EXIST, StaSam, eBPF and NHT and print a side-by-side
 * of what each scheme costs and what it can see — the paper's Figure 1
 * in miniature.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/testbed.h"

using namespace exist;

int
main()
{
    printBanner("Tracing one MySQL-like service with every backend");

    TableWriter table({"Backend", "Throughput", "p99(us)", "SpaceMB",
                       "MSR writes", "ControlOps", "InstrTrace?"});

    ExperimentSpec base;
    base.node.num_cores = 4;
    WorkloadSpec w{.app = "ms", .target = true, .closed_clients = 10};
    base.workloads.push_back(std::move(w));
    base.session.period = secondsToCycles(0.3);
    base.warmup = secondsToCycles(0.06);

    ExperimentSpec oracle_spec = base;
    oracle_spec.backend = "Oracle";
    ExperimentResult oracle = Testbed::run(oracle_spec);

    for (const std::string &backend :
         {"Oracle", "EXIST", "StaSam", "eBPF", "NHT"}) {
        ExperimentSpec spec = base;
        spec.backend = backend;
        spec.decode = backend == "EXIST" || backend == "NHT";
        ExperimentResult r = Testbed::run(spec);
        const AppResult &app = r.at("ms");
        double tput =
            oracle.at("ms").completed
                ? static_cast<double>(app.completed) /
                      static_cast<double>(oracle.at("ms").completed)
                : 1.0;
        table.row({backend, TableWriter::num(tput, 3),
                   TableWriter::num(app.latencies_us.percentile(99), 0),
                   TableWriter::mb(r.backend_stats.trace_real_bytes),
                   std::to_string(r.backend_stats.msr_writes),
                   std::to_string(r.backend_stats.control_ops),
                   spec.decode && r.decoded_branches > 0 ? "yes"
                                                         : "no"});
    }
    table.print();
    std::printf("\nEXIST is the only scheme combining instruction-level "
                "chronological traces with near-Oracle throughput and "
                "O(#cores) control operations.\n");
    return 0;
}
