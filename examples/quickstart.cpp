/**
 * @file
 * Quickstart: trace one service with EXIST and read the results.
 *
 * Builds a single 4-core node running a Memcached-like service under
 * closed-loop load, runs a 200 ms EXIST tracing session (UMA plans the
 * buffers, OTC runs the minimal-control session), decodes the per-core
 * packet buffers against the binary, and prints the hottest functions
 * plus the session's cost counters.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/ground_truth.h"
#include "core/exist_backend.h"
#include "decode/flow_reconstructor.h"
#include "os/kernel.h"
#include "os/loadgen.h"
#include "os/service.h"

using namespace exist;

int
main()
{
    // 1. A node: 4 cores, each with its own hardware tracer.
    NodeConfig node_cfg;
    node_cfg.num_cores = 4;
    node_cfg.seed = 42;
    Kernel kernel(node_cfg);

    // 2. A workload: the "mc" profile from the catalog, served by four
    //    worker threads under ten closed-loop clients.
    auto binary = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(AppCatalog::find("mc"), 1));
    Process *proc = kernel.createProcess("mc", binary, {});
    Service service(&kernel, proc, 7);
    service.spawnWorkers(4);
    ClosedLoopLoadGen load(&kernel, &service, 10, 99);
    load.start();

    // Warm up before tracing.
    kernel.runFor(secondsToCycles(0.05));

    // 3. An EXIST tracing session: 200 ms, 500 MB node budget.
    ExistBackend exist;
    SessionSpec session;
    session.target = proc;
    session.period = secondsToCycles(0.2);
    session.budget_mb = 500;
    exist.start(kernel, session);
    kernel.runFor(session.period);
    exist.stop(kernel);

    // 4. Decode the per-core trace buffers against the binary.
    FlowReconstructor reconstructor(binary.get());
    std::vector<std::uint64_t> fn_insns(binary->numFunctions(), 0);
    std::uint64_t branches = 0;
    for (const CollectedTrace &trace : exist.collect()) {
        DecodedTrace decoded = reconstructor.decode(trace.bytes);
        branches += decoded.branches_decoded;
        for (std::size_t f = 0; f < decoded.function_insns.size(); ++f)
            fn_insns[f] += decoded.function_insns[f];
    }

    // 5. Report.
    BackendStats stats = exist.stats();
    std::printf("EXIST session on 'mc' (%zu traced cores):\n",
                exist.plan().allocations.size());
    std::printf("  control operations : %llu (O(#cores), not "
                "O(#switches))\n",
                (unsigned long long)stats.control_ops);
    std::printf("  RTIT MSR writes    : %llu\n",
                (unsigned long long)stats.msr_writes);
    std::printf("  trace data         : %.1f MB (%.1f MB dropped at "
                "STOP)\n",
                stats.trace_real_bytes / 1048576.0,
                stats.dropped_real_bytes / 1048576.0);
    std::printf("  decoded branches   : %llu\n",
                (unsigned long long)branches);
    std::printf("  switch-log records : %zu (24-byte five-tuples)\n",
                exist.switchLog().size());
    std::printf("  requests completed : %llu, p99 latency %.0f us\n",
                (unsigned long long)load.completed(),
                load.latencies().percentile(99));

    std::vector<std::uint32_t> order(binary->numFunctions());
    for (std::uint32_t f = 0; f < binary->numFunctions(); ++f)
        order[f] = f;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return fn_insns[a] > fn_insns[b];
              });
    std::printf("\nHottest decoded functions:\n");
    double total = 0;
    for (std::uint64_t v : fn_insns)
        total += static_cast<double>(v);
    for (int i = 0; i < 8 && i < static_cast<int>(order.size()); ++i) {
        std::uint32_t f = order[static_cast<std::size_t>(i)];
        if (fn_insns[f] == 0)
            break;
        std::printf("  %-28s %6.2f%%\n",
                    binary->function(f).name.c_str(),
                    100.0 * static_cast<double>(fn_insns[f]) / total);
    }
    return 0;
}
