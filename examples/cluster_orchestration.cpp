/**
 * @file
 * Cluster-level orchestration: the cloud-native integration of §4 and
 * the coverage optimizer of §3.4, end to end.
 *
 * A ten-node cluster runs several deployed applications. A user applies
 * a TraceRequest manifest through the unified interface; the master's
 * controller reconciles it: RCO picks the tracing period from the app's
 * complexity and the repetitions from its deployment, each selected
 * worker runs an EXIST session, raw traces land in the object store,
 * decoded rows in the table store, and the merged report is returned.
 */
#include <cstdio>

#include "cluster/master.h"

using namespace exist;

int
main()
{
    // A small production-like cluster.
    ClusterConfig cluster_cfg;
    cluster_cfg.num_nodes = 10;
    cluster_cfg.cores_per_node = 6;
    cluster_cfg.seed = 2025;
    Cluster cluster(cluster_cfg);
    cluster.deploy("Search1", 8);
    cluster.deploy("Cache", 6);
    cluster.deploy("Agent", 10);

    Master master(&cluster);

    // The user-facing configuration interface: apply manifests.
    std::uint64_t profiling = master.apply(
        "app=Search1 budget_mb=500");
    std::uint64_t anomaly = master.apply(
        "app=Cache anomaly=true period_ms=150");

    std::printf("Applied requests:\n");
    for (std::uint64_t id : {profiling, anomaly}) {
        const TraceRequest *req = master.request(id);
        std::printf("  #%llu %-40s phase=%s\n",
                    (unsigned long long)id, req->toManifest().c_str(),
                    requestPhaseName(req->phase));
    }

    // The controller reconciles all pending requests.
    master.reconcile();

    for (std::uint64_t id : {profiling, anomaly}) {
        const TraceRequest *req = master.request(id);
        const TraceReport *rep = master.report(id);
        std::printf("\nRequest #%llu (%s) -> %s\n",
                    (unsigned long long)id, req->app.c_str(),
                    requestPhaseName(req->phase));
        AppDeployment meta = cluster.metadataFor(req->app, req->anomaly);
        std::printf("  RCO complexity        : %.2f -> period %.0f ms\n",
                    master.rco().complexity(meta),
                    cyclesToMs(rep->period));
        std::printf("  repetitions traced    : %zu of %d replicas%s\n",
                    rep->traced_nodes.size(), meta.replicas,
                    req->anomaly ? " (anomaly: trace all)" : "");
        std::printf("  per-worker accuracy   :");
        for (double a : rep->per_worker_accuracy)
            std::printf(" %.1f%%", 100 * a);
        std::printf("\n  merged accuracy       : %.1f%%\n",
                    100 * rep->merged_accuracy);
        std::printf("  trace data in OSS     : %.1f MB (model bytes)\n",
                    rep->total_trace_bytes / 1048576.0);
    }

    std::printf("\nData plane:\n");
    std::printf("  OSS objects   : %zu (%.1f MB)\n",
                master.oss().objectCount(),
                master.oss().totalBytes() / 1048576.0);
    std::printf("  ODPS rows     : %zu (queryable by app/request)\n",
                master.odps().rowCount());
    auto rows = master.odps().queryApp("Search1");
    std::printf("  ODPS query    : %zu rows for Search1\n", rows.size());

    auto fp = master.managementFootprint();
    std::printf("  management    : %.4f cores, %.0f MB (ten nodes)\n",
                fp.cores, fp.memory_mb);
    return 0;
}
