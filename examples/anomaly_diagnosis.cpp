/**
 * @file
 * The paper's §5.4 case study: diagnosing a synchronous-logging anomaly
 * in a Recommend-like application with EXIST.
 *
 * Setup: Recommend's request handlers RPC into a single-worker logging
 * sidecar whose writes occasionally block on disk for a long time
 * (synchronous logging). Monitoring sees the symptom — response times
 * and queue depth explode — but cannot explain it. An EXIST trace
 * plus its context-switch sidecar shows the cause: one thread parked in
 * a multi-millisecond file_write while every other request convoys
 * behind the logger.
 */
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/exist_backend.h"
#include "decode/flow_reconstructor.h"
#include "os/kernel.h"
#include "os/loadgen.h"
#include "os/service.h"
#include "workload/app_profile.h"

using namespace exist;

int
main()
{
    NodeConfig node_cfg;
    node_cfg.num_cores = 8;
    node_cfg.seed = 5;
    Kernel kernel(node_cfg);

    // The Recommend-like service: every request logs synchronously.
    AppProfile rec_profile = AppCatalog::find("Recommend");
    rec_profile.downstream_rpcs = 1;  // one log write per request
    auto rec_binary = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(rec_profile, 2));
    Process *rec_proc = kernel.createProcess("Recommend", rec_binary, {});
    Service recommend(&kernel, rec_proc, 17);
    recommend.spawnWorkers(12);

    // The logging path: a single worker whose writes block on disk for
    // a long time (the injected fault: a slow disk under contention).
    AppProfile log_profile = AppCatalog::find("Agent");
    log_profile.name = "logger";
    log_profile.demand_mean_insns = 4'000;
    log_profile.syscalls_per_kinsn = 2.0;       // write()-heavy
    log_profile.blocking_fraction = 0.35;       // many writes hit disk
    log_profile.blocking_io_us_mean = 9'000.0;  // the fail-slow disk
    auto log_binary = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(log_profile, 3));
    Process *log_proc = kernel.createProcess("logger", log_binary, {});
    auto logger = std::make_unique<Service>(&kernel, log_proc, 23);
    logger->spawnWorkers(1);  // the single synchronous logging thread
    recommend.setDownstream(logger.get());

    PoissonLoadGen load(&kernel, &recommend, 900.0, 31);
    load.start();
    kernel.runFor(secondsToCycles(0.1));
    load.setWarmupUntil(kernel.now());

    // --- The symptom (what conventional monitoring shows) --------------
    std::printf("Symptom (metrics only):\n");

    // --- The trace (what EXIST adds) ------------------------------------
    ExistBackend exist;
    SessionSpec session;
    session.target = log_proc;  // culprit service pinpointed by RPC
                                // tracing; EXIST digs inside it
    session.period = secondsToCycles(0.5);
    exist.start(kernel, session);
    kernel.runFor(session.period);
    exist.stop(kernel);

    std::printf("  p99 response time : %.1f ms (demand is ~%.2f ms)\n",
                load.latencies().percentile(99) / 1000.0,
                rec_profile.demand_mean_insns / 250e6 * 1e3);
    std::printf("  queue depth       : %zu requests waiting\n",
                recommend.queueDepth());

    // Decode the logger's intra-service trace and read the sidecar.
    FlowReconstructor reconstructor(log_binary.get());
    std::uint64_t active_cycles = 0;
    std::size_t segments = 0;
    for (const CollectedTrace &trace : exist.collect()) {
        DecodedTrace decoded = reconstructor.decode(trace.bytes);
        segments += decoded.segments.size();
        for (const DecodedSegment &seg : decoded.segments)
            active_cycles += seg.end_time - seg.start_time;
    }

    // The context-switch five-tuples expose how long the thread was
    // parked in the kernel between execution segments.
    Cycles longest_gap = 0;
    Cycles last_out = 0;
    std::uint64_t blocked_total = 0;
    int blocked_events = 0;
    for (const SwitchRecord &r : exist.switchLog()) {
        if (r.op == 0) {
            last_out = r.timestamp;
        } else if (last_out != 0) {
            Cycles gap = r.timestamp - last_out;
            if (gap > usToCycles(1000.0)) {
                blocked_total += gap;
                ++blocked_events;
            }
            longest_gap = std::max(longest_gap, gap);
        }
    }

    std::printf("\nDiagnosis from the EXIST trace of 'logger':\n");
    std::printf("  decoded execution segments       : %zu\n", segments);
    std::printf("  on-CPU time within 0.5 s window  : %.1f ms\n",
                cyclesToMs(active_cycles));
    std::printf("  long off-CPU gaps (>1 ms)        : %d, totalling "
                "%.1f ms\n",
                blocked_events, cyclesToMs(blocked_total));
    std::printf("  longest single file_write block  : %.1f ms\n",
                cyclesToMs(longest_gap));
    std::printf("\nConclusion: the logging thread spends the window "
                "blocked in synchronous file_write syscalls on a slow "
                "disk; every Recommend handler convoys behind the "
                "single logger, inflating tail latency. Fix: isolate "
                "the disk or make logging asynchronous (paper §5.4).\n");
    return 0;
}
