#!/usr/bin/env python3
"""Run a benchmark set and aggregate its JSON lines.

Each bench binary prints one machine-readable line per configuration,
prefixed "JSON ". This driver runs the binaries of the chosen set,
collects those lines, and writes one aggregate document (default
BENCH_<set>.json at the repo root) so CI can diff the trajectory
run-over-run.

Sets:
    decode   decode_throughput + decode_latency
             + micro_bench (TNT-memo sweep)      -> BENCH_decode.json
    cluster  reconcile_throughput                -> BENCH_cluster.json
    net      collect_throughput                  -> BENCH_net.json
    durability  recovery_time                    -> BENCH_durability.json
    observability  selftrace_overhead            -> BENCH_observability.json

micro_bench is a google-benchmark binary, not a "JSON "-line one: it is
run with --benchmark_format=json filtered to the TNT-memo sweep, and
its entries are normalized into the same record stream.

Usage:
    tools/bench_trends.py [--set decode] [--build-dir build]
                          [--out BENCH_decode.json] [--scale 0.25]

Only the standard library is used. Exit status is non-zero if a bench
binary is missing, fails, emits no JSON lines or a malformed one, the
aggregate cannot be written, or any configuration diverged from its
serial reference.
"""

import argparse
import json
import os
import subprocess
import sys

BENCH_SETS = {
    "decode": ["decode_throughput", "decode_latency", "micro_bench"],
    "cluster": ["reconcile_throughput"],
    "net": ["collect_throughput"],
    "durability": ["recovery_time"],
    "observability": ["selftrace_overhead"],
}

# Binaries in GOOGLE_BENCHMARK_BENCHES speak google-benchmark's
# --benchmark_format=json instead of "JSON " lines; the filter keeps
# the driver's runtime bounded to the sweep CI actually tracks.
GOOGLE_BENCHMARK_BENCHES = {
    "micro_bench": "BM_TntMemoDecode",
}


class BenchOutputError(Exception):
    """A bench emitted a JSON line this driver cannot parse."""


def run_bench(path, scale):
    env = dict(os.environ)
    if scale is not None:
        env["EXIST_BENCH_SCALE"] = str(scale)
    proc = subprocess.run(
        [path], env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    lines = []
    for lineno, line in enumerate(proc.stdout.splitlines(), start=1):
        if not line.startswith("JSON "):
            continue
        payload = line[len("JSON "):]
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as e:
            raise BenchOutputError(
                f"{os.path.basename(path)}: malformed JSON on output "
                f"line {lineno}: {e}\n  {payload!r}") from e
        if not isinstance(record, dict):
            raise BenchOutputError(
                f"{os.path.basename(path)}: JSON line {lineno} is a "
                f"{type(record).__name__}, expected an object")
        lines.append(record)
    return proc.returncode, lines, proc.stdout


def run_google_benchmark(path, bench_filter):
    """Run a google-benchmark binary and normalize its JSON report."""
    proc = subprocess.run(
        [path, f"--benchmark_filter={bench_filter}",
         "--benchmark_format=json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        return proc.returncode, [], proc.stdout + proc.stderr
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise BenchOutputError(
            f"{os.path.basename(path)}: malformed google-benchmark "
            f"JSON: {e}") from e
    records = []
    for entry in report.get("benchmarks", []):
        name = entry.get("name", "")
        record = {
            "bench": os.path.basename(path),
            "name": name,
            "real_time_ns": entry.get("real_time"),
            "items_per_second": entry.get("items_per_second"),
        }
        # "BM_TntMemoDecode/8" -> tnt_memo_bits=8.
        if "/" in name:
            arg = name.rsplit("/", 1)[1]
            if arg.isdigit():
                record["tnt_memo_bits"] = int(arg)
        if "memo_hit%" in entry:
            record["memo_hit_pct"] = entry["memo_hit%"]
        records.append(record)
    return 0, records, proc.stdout


def summarize(records):
    """Pull the headline numbers out of the raw per-config records."""
    summary = {}
    cache = [r for r in records
             if r.get("bench") == "decode_throughput"
             and r.get("mode") == "cache"]
    if cache:
        best = max(cache, key=lambda r: r.get("speedup", 0.0))
        summary["decode_cache"] = {
            "best_speedup": best.get("speedup"),
            "best_app": best.get("app"),
            "speedups": {r.get("app"): r.get("speedup") for r in cache},
            "memo_hit_pct": {r.get("app"): r.get("memo_hit_pct")
                             for r in cache},
            "all_identical": all(r.get("identical") for r in cache),
        }
    memo = [r for r in records
            if r.get("bench") == "micro_bench"
            and "tnt_memo_bits" in r]
    if memo:
        best = max(memo, key=lambda r: r.get("items_per_second") or 0.0)
        summary["tnt_memo"] = {
            "best_branches_per_sec": best.get("items_per_second"),
            "best_bits": best.get("tnt_memo_bits"),
            "branches_per_sec_by_bits": {
                str(r.get("tnt_memo_bits")): r.get("items_per_second")
                for r in memo},
        }
    tp = [r for r in records
          if r.get("bench") == "decode_throughput"
          and r.get("mode") == "parallel"]
    if tp:
        best = max(tp, key=lambda r: r.get("speedup", 0.0))
        summary["decode_throughput"] = {
            "best_speedup": best.get("speedup"),
            "best_threads": best.get("threads"),
            "segments_per_sec": best.get("segments_per_sec"),
            "all_identical": all(r.get("identical") for r in tp),
        }
    lat = [r for r in records
           if r.get("bench") == "decode_latency"
           and r.get("mode") == "streaming"]
    if lat:
        best = max(lat, key=lambda r: r.get("speedup_vs_batch", 0.0))
        summary["decode_latency"] = {
            "best_speedup_vs_batch": best.get("speedup_vs_batch"),
            "best_threads": best.get("threads"),
            "trace_end_to_report_s": best.get("trace_end_to_report_s"),
            "all_identical": all(r.get("identical") for r in lat),
        }
    rec = [r for r in records
           if r.get("bench") == "reconcile_throughput"
           and r.get("mode") == "sharded"]
    if rec:
        best = max(rec, key=lambda r: r.get("requests_per_sec", 0.0))
        summary["reconcile_throughput"] = {
            "best_requests_per_sec": best.get("requests_per_sec"),
            "best_shards": best.get("shards"),
            "best_speedup_vs_serial": best.get("speedup"),
            "p99_latency_us_at_best": best.get("p99_latency_us"),
            "all_identical": all(r.get("identical") for r in rec),
        }
    st = [r for r in records
          if r.get("bench") == "selftrace_overhead"
          and r.get("mode") == "decode"]
    if st:
        worst = max(st, key=lambda r: r.get("overhead_pct", 0.0))
        emit = [r for r in records
                if r.get("bench") == "selftrace_overhead"
                and r.get("mode") == "emit"]
        summary["selftrace_overhead"] = {
            "worst_overhead_pct": worst.get("overhead_pct"),
            "gate_pct": worst.get("gate_pct"),
            "all_pass": all(r.get("pass") for r in st),
            "emit_ns_per_event":
                emit[0].get("ns_per_event") if emit else None,
        }
    col = [r for r in records
           if r.get("bench") == "collect_throughput"]
    if col:
        worst = max(col, key=lambda r: r.get("loss", 0.0))
        summary["collect_throughput"] = {
            "transfers_per_sec_at_worst_loss":
                worst.get("transfers_per_sec"),
            "worst_loss": worst.get("loss"),
            "goodput_at_worst_loss": worst.get("goodput"),
            "retransmits_at_worst_loss": worst.get("retransmits"),
            "degraded_total": sum(r.get("degraded", 0) for r in col),
            "all_identical": all(r.get("identical") for r in col),
        }
    return summary


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--set", dest="bench_set", default="decode",
                    choices=sorted(BENCH_SETS),
                    help="benchmark set to run (default: decode)")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--out", default=None,
                    help="aggregate output path "
                         "(default: BENCH_<set>.json)")
    ap.add_argument("--scale", default=None,
                    help="EXIST_BENCH_SCALE for quick runs, e.g. 0.25")
    args = ap.parse_args()

    benches = BENCH_SETS[args.bench_set]
    out_path = args.out or f"BENCH_{args.bench_set}.json"

    records = []
    for name in benches:
        path = os.path.join(args.build_dir, "bench", name)
        if not os.path.exists(path):
            print(f"bench binary not found: {path} "
                  f"(build the project first)", file=sys.stderr)
            return 1
        print(f"running {name} ...", flush=True)
        try:
            if name in GOOGLE_BENCHMARK_BENCHES:
                rc, lines, output = run_google_benchmark(
                    path, GOOGLE_BENCHMARK_BENCHES[name])
            else:
                rc, lines, output = run_bench(path, args.scale)
        except BenchOutputError as e:
            print(f"bench output error: {e}", file=sys.stderr)
            return 1
        if rc != 0:
            sys.stderr.write(output)
            print(f"{name} failed with exit {rc}", file=sys.stderr)
            return rc
        if not lines:
            print(f"{name} emitted no JSON lines", file=sys.stderr)
            return 1
        records.extend(lines)
        print(f"  {len(lines)} configurations")

    doc = {
        "benches": benches,
        "scale": args.scale,
        "records": records,
        "summary": summarize(records),
    }
    try:
        with open(out_path, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    except OSError as e:
        print(f"cannot write {out_path}: {e}", file=sys.stderr)
        return 1
    print(f"wrote {out_path}: {len(records)} records")
    for bench, s in doc["summary"].items():
        print(f"  {bench}: {s}")
    if not all(s.get("all_identical", True)
               for s in doc["summary"].values()):
        print("a configuration diverged from its reference!",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
