#!/usr/bin/env python3
"""Determinism lint for the EXIST source tree.

The repo's headline invariant is that reports are bit-identical across
thread and shard counts (DESIGN.md §8).  Three source-level patterns
are the usual way that invariant rots, so this lint bans them outright:

  raw-rand             rand()/srand()/drand48()/std::random_device/
                       std::mt19937 etc. outside util/rng.h.  All
                       randomness must flow through exist::Rng streams
                       seeded with splitmix64 so results depend only on
                       (seed, id), never on global RNG call order.
  time-seeded-rng      time(...)/clock()/steady_clock::now() feeding a
                       seed.  Wall-clock seeds make every run unique.
  unordered-iteration  std::unordered_{map,set,multimap,multiset} in
                       the deterministic output layers (analysis,
                       cluster, decode, core, hwtrace).  Hash-map
                       iteration order is implementation-defined and
                       must never feed serialized output or report
                       assembly; use std::map/std::set or sort first.
  raw-locking          std::mutex / std::lock_guard / std::unique_lock /
                       std::condition_variable and friends outside
                       util/thread_annotations.h + util/lock_order.cc.
                       Locking must go through the annotated exist::
                       Mutex/MutexLock/CondVar wrappers so Clang's
                       thread-safety analysis and the debug lock-order
                       validator see every acquisition.
  pointer-keyed-container
                       std::map/std::set (ordered or unordered) keyed
                       by a raw pointer in the deterministic output
                       layers.  Pointer keys order (or hash) by
                       allocation address, so iteration order varies
                       run to run under ASLR/allocator drift; key by a
                       stable id (block index, function id, name) or
                       sort by a value-derived field before emitting.

  raw-file-io          fopen/freopen/std::ofstream/std::fstream
                       outside src/durability/ and the cluster
                       storage layer.  Durable bytes must flow
                       through the WAL/snapshot code (checksummed,
                       crash-point-instrumented, replay-validated);
                       ad-hoc file writes elsewhere create state that
                       recovery cannot see and reports must never
                       depend on.

  obs-read-back        obs::snapshot()/chromeTraceJson()/
                       flightDumpText()/flightDumpTo() and the obs
                       counters outside src/obs/.  The self-tracing
                       plane is write-only from product code: span
                       emission must never feed report bytes, or the
                       spans-on == spans-off byte-identity guarantee
                       (and with it report determinism) silently
                       breaks.  Read-side consumers live in tools/,
                       bench/, and tests/, which are not report
                       producers.

Suppression, narrowest first:
  * an inline `// lint-allow: <rule>` comment on the offending line;
  * a `path:rule` line in tools/analysis_allow.txt (shared with
    tools/analyzer/exist_analyzer.py, so one justified waiver covers
    both the regex and the AST layer).

This lint is the fast regex layer; tools/analyzer/exist_analyzer.py
re-implements the unordered-iteration, pointer-keyed-container, and
raw-locking rules as alias- and dataflow-aware AST passes.  Where the
analyzer also runs, pass `--defer-to-analyzer`: those three rules are
then reported as warnings only (the AST layer is the gate), while the
purely lexical rules (raw-rand, time-seeded-rng, raw-file-io) stay
hard failures here.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.

`--self-test` runs the rules over tools/lint_fixtures/ and checks that
each bad_*.cc fixture trips exactly its named rule and good_*.cc stays
clean.  Fixtures declare the path the lint should pretend they live at
with a first-line `// lint-virtual-path: src/...` comment, so the
path-scoped rules (unordered-iteration, raw-locking) are exercised
without planting bad code inside src/.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose serialized output / report assembly must be
# deterministic: hash-map iteration there is a bug even when today's
# use happens to be order-insensitive, because the next edit won't be.
ORDERED_OUTPUT_DIRS = (
    "src/analysis/",
    "src/cluster/",
    "src/decode/",
    "src/core/",
    "src/hwtrace/",
)

# Files allowed to name raw std synchronisation primitives: the wrapper
# that instruments them, and the validator whose own bookkeeping must
# not recurse into instrumented locks.
RAW_LOCKING_WRAPPERS = (
    "src/util/thread_annotations.h",
    "src/util/lock_order.cc",
    "src/util/lock_order.h",
)

RNG_HOME = "src/util/rng.h"

# The only places allowed to touch files directly: the durability
# plane (WAL + snapshots own all persistent bytes) and the simulated
# cluster storage layer.
FILE_IO_HOMES = (
    "src/durability/",
    "src/cluster/storage",
)

# The self-observability plane (src/obs) is write-only telemetry:
# report-producing code may emit spans but never read the rings back,
# or span timing could leak into report bytes and break the
# spans-on == spans-off byte identity. Only the plane itself may call
# its read-side API; CLI/bench/test surfaces live outside src/ and are
# not linted.
OBS_READ_HOMES = (
    "src/obs/",
)

RULES = [
    (
        "raw-rand",
        re.compile(
            r"\b(?:std::)?(?:rand|srand|rand_r|drand48|lrand48|mrand48|"
            r"srand48|random)\s*\("
            r"|std::random_device\b"
            r"|std::(?:mt19937|mt19937_64|minstd_rand0?|ranlux\w+|"
            r"knuth_b|default_random_engine)\b"
        ),
        None,  # applies everywhere under src/ except RNG_HOME
    ),
    (
        "time-seeded-rng",
        re.compile(
            r"\b(?:seed|srand|srand48|Rng|rng)\s*\(?[^;\n]*"
            r"(?:\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|\bclock\s*\(\s*\)"
            r"|steady_clock::now|system_clock::now"
            r"|high_resolution_clock::now)"
        ),
        None,
    ),
    (
        "unordered-iteration",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        ORDERED_OUTPUT_DIRS,
    ),
    (
        "pointer-keyed-container",
        re.compile(
            r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
            r"(?:const\s+)?[\w:]+(?:\s+const)?\s*\*"
        ),
        ORDERED_OUTPUT_DIRS,
    ),
    (
        "raw-file-io",
        re.compile(
            r"\bfopen\s*\(|\bfreopen\s*\("
            r"|\bstd::o?fstream\b"
        ),
        None,  # applies everywhere under src/ except FILE_IO_HOMES
    ),
    (
        "obs-read-back",
        re.compile(
            r"\b(?:obs::)?(?:chromeTraceJson|flightDumpText|"
            r"flightDumpTo)\s*\("
            r"|\bobs::(?:snapshot|eventsRecorded|threadsRegistered|"
            r"threadsDropped)\s*\("
        ),
        None,  # applies everywhere under src/ except OBS_READ_HOMES
    ),
    (
        "raw-locking",
        re.compile(
            r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
            r"shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
            r"shared_lock|condition_variable(?:_any)?)\b"
        ),
        None,
    ),
]

# Rules that tools/analyzer/exist_analyzer.py re-implements as
# AST-accurate passes; with --defer-to-analyzer they demote to
# warnings and the AST layer is the gate.
ANALYZER_SUPERSEDED = {
    "unordered-iteration",
    "pointer-keyed-container",
    "raw-locking",
}

ALLOW_RE = re.compile(r"//\s*lint-allow:\s*([\w,\- ]+)")
VPATH_RE = re.compile(r"^//\s*(?:lint|analyzer)-virtual-path:\s*(\S+)")


def strip_code(line, in_block):
    """Drop string/char literals and comments; keep structure.

    Returns (code, in_block).  A line-based scanner is enough here: the
    tree has no raw strings or multi-line literals on lint-relevant
    lines, and false negatives from exotic quoting would still be
    caught by review.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal in place
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def load_allowlist(path):
    allow = set()
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw in f:
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            if ":" not in entry:
                sys.stderr.write(
                    "determinism_lint: malformed allowlist entry %r "
                    "(want path:rule)\n" % entry
                )
                sys.exit(2)
            allow.add(tuple(entry.rsplit(":", 1)))
    return allow


def lint_file(path, rel, allowlist):
    """Return a list of (rel, lineno, rule, line) findings."""
    findings = []
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    # Fixtures pretend to live somewhere under src/ so the path-scoped
    # rules fire; real sources never carry the marker.
    if lines and (m := VPATH_RE.match(lines[0])):
        rel = m.group(1)

    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        inline_allow = set()
        if m := ALLOW_RE.search(raw):
            inline_allow = {r.strip() for r in m.group(1).split(",")}
        code, in_block = strip_code(raw, in_block)
        if not code.strip():
            continue
        for rule, pattern, dirs in RULES:
            if rule == "raw-rand" and rel == RNG_HOME:
                continue
            if rule == "raw-locking" and rel in RAW_LOCKING_WRAPPERS:
                continue
            if rule == "raw-file-io" and rel.startswith(FILE_IO_HOMES):
                continue
            if rule == "obs-read-back" and rel.startswith(
                OBS_READ_HOMES
            ):
                continue
            if dirs is not None and not rel.startswith(dirs):
                continue
            if not pattern.search(code):
                continue
            if rule in inline_allow or (rel, rule) in allowlist:
                continue
            findings.append((rel, lineno, rule, raw.strip()))
    return findings


def collect_sources(roots):
    exts = (".cc", ".h", ".cpp", ".hpp")
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def run_lint(roots, allowlist):
    findings = []
    for path in collect_sources(roots):
        rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        rel = rel.replace(os.sep, "/")
        findings.extend(lint_file(path, rel, allowlist))
    return findings


def self_test(fixture_dir, allowlist):
    """bad_<rule>*.cc must trip exactly <rule>; good_*.cc stay clean."""
    failures = []
    fixtures = sorted(collect_sources([fixture_dir]))
    if not fixtures:
        sys.stderr.write(
            "determinism_lint: no fixtures under %s\n" % fixture_dir
        )
        return 2
    for path in fixtures:
        name = os.path.basename(path)
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        found = {rule for _, _, rule, _ in lint_file(path, rel, allowlist)}
        if name.startswith("bad_"):
            stem = name[len("bad_"):].rsplit(".", 1)[0]
            expected = stem.replace("_", "-")
            # bad_raw_rand_2.cc style numbering shares the base rule.
            expected = re.sub(r"-\d+$", "", expected)
            if expected not in found:
                failures.append(
                    "%s: expected rule %r, got %s"
                    % (name, expected, sorted(found) or "nothing")
                )
        elif name.startswith("good_"):
            if found:
                failures.append(
                    "%s: expected clean, got %s" % (name, sorted(found))
                )
        else:
            failures.append(
                "%s: fixture must be named bad_<rule>*.cc or good_*.cc"
                % name
            )
    if failures:
        for f in failures:
            sys.stderr.write("determinism_lint self-test FAIL: %s\n" % f)
        return 1
    print("determinism_lint self-test: %d fixtures OK" % len(fixtures))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="ban nondeterminism-prone patterns in src/"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--allowlist",
        default=os.path.join(REPO_ROOT, "tools", "analysis_allow.txt"),
        help="path:rule waiver file shared with exist_analyzer",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the rules against tools/lint_fixtures/",
    )
    parser.add_argument(
        "--defer-to-analyzer",
        action="store_true",
        help="report AST-superseded rules (%s) as warnings only; "
        "tools/analyzer/exist_analyzer.py is their gate"
        % ", ".join(sorted(ANALYZER_SUPERSEDED)),
    )
    args = parser.parse_args(argv)

    allowlist = load_allowlist(args.allowlist)
    if args.self_test:
        return self_test(
            os.path.join(REPO_ROOT, "tools", "lint_fixtures"), allowlist
        )

    roots = args.paths or [os.path.join(REPO_ROOT, "src")]
    for root in roots:
        if not os.path.exists(root):
            sys.stderr.write(
                "determinism_lint: no such path: %s\n" % root
            )
            return 2
    findings = run_lint(roots, allowlist)
    hard = []
    for rel, lineno, rule, line in findings:
        if args.defer_to_analyzer and rule in ANALYZER_SUPERSEDED:
            print(
                "%s:%d: [%s] (warning; exist-analyzer is the gate) %s"
                % (rel, lineno, rule, line)
            )
        else:
            hard.append((rel, lineno, rule, line))
            print("%s:%d: [%s] %s" % (rel, lineno, rule, line))
    if hard:
        sys.stderr.write(
            "determinism_lint: %d finding(s); fix them, add an inline "
            "`// lint-allow: <rule>` with a justification, or extend "
            "tools/analysis_allow.txt\n" % len(hard)
        )
        return 1
    print("determinism_lint: clean (%s)" % ", ".join(roots))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
