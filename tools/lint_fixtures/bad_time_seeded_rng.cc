// lint-virtual-path: src/cluster/fixture_time_seed.cc
// Self-test fixture: wall-clock seeds make every run unique; must trip
// time-seeded-rng.
#include <ctime>

#include "util/rng.h"

double
sample()
{
    exist::Rng rng(static_cast<unsigned long long>(time(nullptr)));
    return rng.uniform();
}
