// lint-virtual-path: src/obs/fixture_exporter.cc
// Self-test fixture: src/obs/ is the read-side home — the plane's own
// exporters may walk the rings; the same calls trip obs-read-back
// anywhere else under src/.
#include <string>

namespace exist {
namespace obs {

std::string
renderEverything()
{
    std::string out = chromeTraceJson();
    out += flightDumpText(64);
    for (const auto &snap : snapshot())
        out += std::to_string(snap.total);
    return out;
}

}  // namespace obs
}  // namespace exist
