// lint-virtual-path: src/decode/fixture_pointer_keyed.cc
// Self-test fixture: a container keyed by a raw pointer in an
// output-assembly layer must trip pointer-keyed-container — iteration
// order follows allocation addresses, which vary run to run.
#include <cstdint>
#include <map>

struct Block;

std::uint64_t
totalVisits(const std::map<const Block *, std::uint64_t> &visits)
{
    std::uint64_t total = 0;
    for (const auto &[block, count] : visits)
        total += count;
    return total;
}
