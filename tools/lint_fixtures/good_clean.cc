// lint-virtual-path: src/cluster/fixture_clean.cc
// Self-test fixture: idiomatic code — ordered containers, exist::Rng
// streams, annotated locking — must pass every rule.
#include <cstdint>
#include <map>
#include <string>

#include "util/rng.h"
#include "util/thread_annotations.h"

std::uint64_t
orderedTotal(const std::map<std::string, std::uint64_t> &sizes,
             std::uint64_t seed)
{
    exist::Rng rng(exist::splitmix64(seed));
    static exist::Mutex mu(exist::lockorder::LockRank::kLeaf, "fixture");
    exist::MutexLock lk(mu);
    std::uint64_t total = rng.next() & 1;
    for (const auto &[key, bytes] : sizes)
        total += bytes;
    return total;
}
