// lint-virtual-path: src/durability/fixture_wal_writer.cc
// Self-test fixture: the durability plane is the file-IO home — the
// same calls that trip raw-file-io elsewhere are clean here.
#include <cstdio>

void
appendRecord(const char *path, const char *bytes, unsigned long n)
{
    std::FILE *f = fopen(path, "ab");
    std::fwrite(bytes, 1, n, f);
    std::fflush(f);
    std::fclose(f);
}
