// lint-virtual-path: src/analysis/fixture_raw_rand.cc
// Self-test fixture: global C RNG outside util/rng.h must trip the
// raw-rand rule.  Never compiled; linted only.
#include <cstdlib>

int
pickCore(int cores)
{
    return rand() % cores;
}
