// lint-virtual-path: src/cluster/fixture_obs_read_back.cc
// Self-test fixture: product code reading the self-tracing plane back
// must trip obs-read-back — span timing feeding a report-adjacent
// string would break the spans-on == spans-off byte identity that
// report determinism rests on.
#include <string>

namespace exist {

std::string
describeClusterHealth()
{
    std::string report = "cluster health\n";
    report += obs::flightDumpText(32);
    if (obs::eventsRecorded() > 1000)
        report += "busy\n";
    for (const auto &snap : obs::snapshot())
        report += std::to_string(snap.total);
    report += chromeTraceJson();
    return report;
}

}  // namespace exist
