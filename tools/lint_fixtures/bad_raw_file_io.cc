// lint-virtual-path: src/analysis/fixture_raw_file_io.cc
// Self-test fixture: ad-hoc file writes outside src/durability/ and
// the cluster storage layer must trip raw-file-io — durable bytes
// have to flow through the checksummed, crash-point-instrumented
// WAL/snapshot code, or recovery cannot see them.
#include <cstdio>
#include <fstream>

void
dumpDebugState(const char *path, int value)
{
    std::FILE *f = fopen(path, "w");
    std::fprintf(f, "%d\n", value);
    std::fclose(f);
    std::ofstream out("sidecar.txt");
    out << value;
}
