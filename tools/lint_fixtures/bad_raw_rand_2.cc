// lint-virtual-path: src/decode/fixture_mt19937.cc
// Self-test fixture: std engines outside util/rng.h must trip
// raw-rand even when seeded deterministically — streams must fork via
// exist::Rng so draw order can't leak between components.
#include <random>

unsigned
jitter()
{
    std::mt19937 gen(42);
    return gen();
}
