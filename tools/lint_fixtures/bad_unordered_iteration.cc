// lint-virtual-path: src/cluster/fixture_unordered.cc
// Self-test fixture: hash-map containers in an output-assembly layer
// must trip unordered-iteration — iteration order is
// implementation-defined and would leak into serialized reports.
#include <cstdint>
#include <string>
#include <unordered_map>

std::uint64_t
totalBytes(const std::unordered_map<std::string, std::uint64_t> &sizes)
{
    std::uint64_t total = 0;
    for (const auto &[key, bytes] : sizes)
        total += bytes;
    return total;
}
