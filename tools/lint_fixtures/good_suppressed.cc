// lint-virtual-path: src/analysis/fixture_suppressed.cc
// Self-test fixture: matches in comments and string literals must not
// fire, and an inline lint-allow must suppress a real match.
#include <string>

// A comment mentioning std::mutex and rand() is documentation, not use.

std::string
describe()
{
    // The literal below names banned identifiers; literals are
    // stripped before matching.
    std::string text = "call rand() under std::mutex via time(NULL)";
    int sanctioned = rand();  // lint-allow: raw-rand (fixture: proves suppression)
    return text + std::to_string(sanctioned);
}
