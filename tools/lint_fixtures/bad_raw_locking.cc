// lint-virtual-path: src/runtime/fixture_raw_lock.cc
// Self-test fixture: std synchronisation primitives outside the
// annotated wrappers must trip raw-locking — they are invisible to
// Clang's thread-safety analysis and to the lock-order validator.
#include <mutex>

int
counterBump(int &counter)
{
    static std::mutex mu;
    std::lock_guard<std::mutex> lk(mu);
    return ++counter;
}
