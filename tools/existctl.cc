/**
 * @file
 * existctl — the operator CLI over the EXIST library (the paper's
 * "easy-to-use interface", §3.1/§4). Three commands:
 *
 *   existctl list-apps
 *       Show the workload catalog.
 *
 *   existctl trace <app> [--period-ms N] [--budget-mb N]
 *                        [--backend EXIST|StaSam|eBPF|NHT]
 *                        [--cores N] [--clients N] [--report]
 *                        [--threads N] [--streaming] [--shards N]
 *                        [--no-decode-cache] [--tnt-memo-bits N]
 *                        [--net] [--loss R] [--reorder R]
 *                        [--duplicate R] [--link-latency-us N]
 *       Run one node-level tracing session against a synthetic
 *       deployment of <app> and print the session statistics; with
 *       --report, also synthesize the human-readable behaviour report.
 *       --streaming overlaps trace collection with flow reconstruction
 *       (EXIST backend only), shrinking the trace-end-to-report-ready
 *       latency; the decoded output is bit-identical to batch.
 *       --no-decode-cache falls back to the legacy CFG-walk decoder
 *       and --tnt-memo-bits N sets the TNT-run memo window (0
 *       disables memoization; see DESIGN.md §11). Both are pure
 *       perf knobs: the report is bit-identical either way.
 *       --shards N switches to the sharded control plane: a demo
 *       cluster deploys <app>, a stream of anomaly requests reconciles
 *       across N API-server shards, and the merged reports print.
 *       --net routes the session result through the collection plane
 *       (node trace agent -> master ingest over the simulated fabric,
 *       cluster/collection.h) at the given loss/reorder/duplicate
 *       rates and link latency. The printed results are byte-identical
 *       to the in-process hand-off whenever the transfer completes
 *       within the retry budget; transport telemetry goes to stderr.
 *
 *   existctl cluster <manifest>... [--threads N]
 *       Stand up a demo ten-node cluster with the cloud applications
 *       deployed, apply each TraceRequest manifest (e.g.
 *       "app=Search1 anomaly=true period_ms=200"), reconcile, and
 *       print the merged reports.
 *
 *   existctl metrics [<manifest>...] [--shards N] [--threads N]
 *       Dump the process-global control-plane metrics registry as one
 *       JSON object. With manifests, first reconcile them on the demo
 *       cluster through a ShardedMaster recording into that registry,
 *       so the dump shows a live control plane.
 *
 *   existctl trace <app> --wal DIR [--snapshot-interval K]
 *                        [--crash-at P] [--shards N] ...
 *       Durability mode (DESIGN.md §12): the control plane (serial
 *       without --shards, sharded with) journals every mutation into
 *       DIR's write-ahead log and snapshots every K publishes.
 *       --crash-at arms a named crash point ("admit", "post-plan",
 *       "ingest-frame", "pre-store", "mid-snapshot", "post-snapshot",
 *       optionally ":n" for the nth crossing, or "step:N") — the
 *       process dies there with exit code 42, leaving only the WAL.
 *
 *   existctl recover DIR [--threads N]
 *       Recover the control plane from DIR: load the newest valid
 *       snapshot, replay the WAL tail, re-plan whatever was in
 *       flight, and print the reports — byte-identical on stdout to
 *       the crash-free trace run. Recovery telemetry goes to stderr.
 *
 *   existctl top [<manifest>...] [--shards N] [--threads N]
 *                [--iterations N] [--interval-ms M]
 *       Live metrics view: reconcile the optional manifests on the
 *       demo cluster, then render every registry metric as one sorted
 *       table (name, type, value). --iterations N redraws the table N
 *       times at --interval-ms spacing, like a primitive `top`.
 *
 *   existctl dump-flight [<manifest>...] [--threads N]
 *       Reconcile the optional manifests (to generate span traffic),
 *       then dump the self-observability flight recorder — the last
 *       events of every thread — to stdout. This is the same dump a
 *       crash point or fatal error prints as its last words.
 *
 * Any `trace` invocation also takes --self-trace FILE: on exit the
 * internal span rings (DESIGN.md §14) are exported as Chrome
 * trace-event JSON to FILE, loadable in Perfetto / chrome://tracing.
 * stdout is unaffected — the observability plane is write-only.
 *
 * --threads N sets the decode/reconcile parallelism (default: hardware
 * concurrency; --threads 1 is the fully serial path). The output is
 * bit-identical at any thread or shard count — they only change wall
 * time.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/behavior_report.h"
#include "analysis/report.h"
#include "analysis/testbed.h"
#include "cluster/collection.h"
#include "cluster/master.h"
#include "cluster/metrics.h"
#include "cluster/shard/sharded_master.h"
#include "core/exist_backend.h"
#include "decode/parallel_decoder.h"
#include "durability/crash_point.h"
#include "durability/journal.h"
#include "durability/recovery.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace_plane.h"
#include "util/logging.h"
#include "workload/app_profile.h"

using namespace exist;

namespace {

/** --self-trace destination; written from main() after the command
 *  returns so every instrumented path has finished emitting. */
std::string g_self_trace;

int
usage()
{
    std::fputs(
        "usage: existctl list-apps\n"
        "       existctl trace <app> [--period-ms N] [--budget-mb N]\n"
        "                      [--backend NAME] [--cores N]\n"
        "                      [--clients N] [--report] [--threads N]\n"
        "                      [--streaming] [--shards N]\n"
        "                      [--no-decode-cache] [--tnt-memo-bits N]\n"
        "                      [--net] [--loss R] [--reorder R]\n"
        "                      [--duplicate R] [--link-latency-us N]\n"
        "       existctl cluster <manifest>... [--threads N]\n"
        "       existctl metrics [<manifest>...] [--shards N]\n"
        "                      [--threads N]\n"
        "       existctl trace <app> --wal DIR\n"
        "                      [--snapshot-interval K] [--crash-at P]\n"
        "                      [--shards N] ...\n"
        "       existctl recover DIR [--threads N]\n"
        "       existctl top [<manifest>...] [--shards N]\n"
        "                      [--threads N] [--iterations N]\n"
        "                      [--interval-ms M]\n"
        "       existctl dump-flight [<manifest>...] [--threads N]\n"
        "       (any trace form also takes --self-trace FILE)\n",
        stderr);
    return 2;
}

int
cmdListApps()
{
    TableWriter table({"Name", "Kind", "Threads", "Priority",
                       "Description"});
    for (const std::string &name : AppCatalog::allNames()) {
        AppProfile p = AppCatalog::find(name);
        table.row({p.name, p.is_service ? "service" : "compute",
                   std::to_string(p.num_threads),
                   TableWriter::num(p.priority, 2), p.description});
    }
    table.print();
    return 0;
}

/** Print one reconciled request deterministically (stdout must stay
 *  byte-comparable across shard/thread counts). */
template <typename MasterT>
void
printReports(MasterT &master, const std::vector<std::uint64_t> &ids)
{
    for (std::uint64_t id : ids) {
        const TraceRequest *req = master.request(id);
        std::printf("\nrequest #%llu: %s -> %s\n",
                    (unsigned long long)id, req->toManifest().c_str(),
                    requestPhaseName(req->phase));
        const TraceReport *rep = master.report(id);
        if (rep == nullptr)
            continue;
        std::printf("  period %.0f ms, %zu workers, merged accuracy "
                    "%.1f%%, %.1f MB in OSS\n",
                    cyclesToMs(rep->period), rep->traced_nodes.size(),
                    100 * rep->merged_accuracy,
                    rep->total_trace_bytes / 1048576.0);
    }
    std::printf("\nOSS: %zu objects, ODPS: %zu rows\n",
                master.oss().objectCount(), master.odps().rowCount());
}

/** Render the collection-plane knobs as manifest keys. */
std::string
netManifest(const net::NetSpec &net)
{
    if (!net.enabled)
        return "";
    std::string m = " net=true";
    if (net.drop_rate > 0)
        m += " loss=" + std::to_string(net.drop_rate);
    if (net.reorder_rate > 0)
        m += " reorder=" + std::to_string(net.reorder_rate);
    if (net.duplicate_rate > 0)
        m += " duplicate=" + std::to_string(net.duplicate_rate);
    if (net.link_latency_us != 50.0)
        m += " link_latency_us=" + std::to_string(net.link_latency_us);
    return m;
}

/** `trace --shards N`: the same request, reconciled by the sharded
 *  control plane on a demo cluster deploying the app. */
int
traceSharded(const std::string &app, double period_ms,
             std::uint64_t budget_mb, int shards, int threads,
             bool decode_cache, int tnt_memo_bits,
             const net::NetSpec &net)
{
    ClusterConfig cc;
    cc.num_nodes = 6;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy(app, 3);

    ShardedMaster master(&cluster, {}, shards, threads);
    std::string manifest =
        "app=" + app + " anomaly=true period_ms=" +
        std::to_string(static_cast<long long>(period_ms)) +
        " budget_mb=" + std::to_string(budget_mb);
    if (!decode_cache)
        manifest += " decode_cache=off";
    if (tnt_memo_bits != 6)
        manifest += " tnt_memo_bits=" + std::to_string(tnt_memo_bits);
    manifest += netManifest(net);
    // The shard count goes to stderr with the other telemetry so
    // stdout is byte-comparable across shard counts.
    note("existctl", "tracing '%s' across %d control-plane shard%s...",
         app.c_str(), master.shardCount(),
         master.shardCount() == 1 ? "" : "s");

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(master.apply(manifest));
    auto t0 = std::chrono::steady_clock::now();
    master.reconcile();
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    printReports(master, ids);

    // Wall-clock telemetry, so stderr: stdout stays byte-comparable
    // across shard counts.
    metrics::Registry &reg = master.metrics();
    note("existctl",
         "reconciled %zu requests in %.1f ms "
         "(%.1f req/s, p99 %llu us, %llu sessions)",
         ids.size(), wall_s * 1e3, ids.size() / wall_s,
         (unsigned long long)reg.histogram("reconcile.latency_us")
             .percentile(0.99),
         (unsigned long long)master.sessionsRun());
    return 0;
}

/** Shared tail of the WAL-journaled trace: submit everything first
 *  (all admissions durable before any reconcile-time crash point),
 *  reconcile once, snapshot if due, print. */
template <typename MasterT>
int
runWalTrace(MasterT &master, durability::Journal &journal,
            const std::string &manifest, int nrequests)
{
    master.attachJournal(&journal);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < nrequests; ++i)
        ids.push_back(master.apply(manifest));
    master.reconcile();
    journal.maybeSnapshot([&master] { return master.dumpState(); });
    printReports(master, ids);
    return 0;
}

/** `trace --wal DIR`: the demo deployment reconciled under the
 *  durability journal (shards == 0 => the serial Master). stdout is
 *  byte-identical to the same run without --wal. */
int
traceWal(const std::string &app, double period_ms,
         std::uint64_t budget_mb, int shards, int threads,
         bool decode_cache, int tnt_memo_bits, const net::NetSpec &net,
         const std::string &wal_dir, std::uint64_t snapshot_interval,
         const std::string &crash_at)
{
    ClusterConfig cc;
    cc.num_nodes = 6;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy(app, 3);

    durability::ClusterMeta meta;
    meta.cluster_seed = cc.seed;
    meta.num_nodes = cc.num_nodes;
    meta.cores_per_node = cc.cores_per_node;
    meta.shards = shards;
    meta.snapshot_interval = snapshot_interval;
    meta.deployments = {{app, 3}};

    durability::DurabilitySpec dspec;
    dspec.wal_dir = wal_dir;
    dspec.snapshot_interval = snapshot_interval;
    durability::Journal journal(dspec, meta,
                                &metrics::Registry::global());

    // wal= rides in the manifest to exercise the CRD key end to end;
    // toManifest() omits it, so the printed request lines (and hence
    // stdout) stay byte-comparable with a non-WAL golden run.
    std::string manifest =
        "app=" + app + " anomaly=true period_ms=" +
        std::to_string(static_cast<long long>(period_ms)) +
        " budget_mb=" + std::to_string(budget_mb);
    if (!decode_cache)
        manifest += " decode_cache=off";
    if (tnt_memo_bits != 6)
        manifest += " tnt_memo_bits=" + std::to_string(tnt_memo_bits);
    manifest += netManifest(net);
    manifest += " wal=" + wal_dir;

    note("existctl",
         "tracing '%s' under WAL %s (snapshot interval %llu, "
         "%d shard%s)%s%s",
         app.c_str(), wal_dir.c_str(),
         (unsigned long long)snapshot_interval, shards,
         shards == 1 ? "" : "s",
         crash_at.empty() ? "" : ", crash at ", crash_at.c_str());
    if (!crash_at.empty())
        durability::crashpoint::arm(crash_at);

    if (shards == 0) {
        Master master(&cluster, {}, threads);
        return runWalTrace(master, journal, manifest, 4);
    }
    ShardedMaster master(&cluster, {}, shards, threads);
    return runWalTrace(master, journal, manifest, 4);
}

/** `recover DIR`: rebuild the control plane the WAL describes and
 *  finish what the crashed run left pending. */
int
cmdRecover(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string dir = argv[0];
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else
            return usage();
    }

    durability::RecoveryResult rec =
        durability::recover(dir, &metrics::Registry::global());
    if (!rec.ok) {
        logLine(LogLevel::kError, "existctl", "recovery failed: %s",
                rec.error.c_str());
        return 1;
    }
    const durability::RecoveredState &st = rec.state;
    note("existctl",
         "recovered %llu WAL records (%.1f KB)%s, "
         "%llu publishes replayed, %llu requests to re-plan",
         (unsigned long long)st.telemetry.wal_records,
         st.telemetry.wal_bytes / 1024.0,
         st.telemetry.snapshot_used ? " + snapshot" : "",
         (unsigned long long)st.telemetry.replayed_publishes,
         (unsigned long long)st.telemetry.pending_requests);

    ClusterConfig cc;
    cc.num_nodes = st.meta.num_nodes;
    cc.cores_per_node = st.meta.cores_per_node;
    cc.seed = st.meta.cluster_seed;
    Cluster cluster(cc);
    for (const auto &[app, replicas] : st.meta.deployments)
        cluster.deploy(app, replicas);

    durability::DurabilitySpec dspec;
    dspec.wal_dir = dir;
    dspec.snapshot_interval = st.meta.snapshot_interval;
    durability::Journal journal(dspec, st.meta,
                                &metrics::Registry::global());
    journal.setResume(st.resume);

    std::vector<std::uint64_t> ids;
    for (const auto &[id, req] : st.dump.requests)
        ids.push_back(id);

    if (st.meta.shards == 0) {
        Master master(&cluster, {}, threads);
        master.restoreForRecovery(st.dump);
        master.attachJournal(&journal);
        master.reconcile();
        journal.maybeSnapshot([&master] { return master.dumpState(); });
        printReports(master, ids);
    } else {
        ShardedMaster master(&cluster, {}, st.meta.shards, threads);
        master.restoreForRecovery(st.dump);
        master.attachJournal(&journal);
        master.reconcile();
        journal.maybeSnapshot([&master] { return master.dumpState(); });
        printReports(master, ids);
    }
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string app = argv[0];
    double period_ms = 200;
    std::uint64_t budget_mb = 500;
    std::string backend = "EXIST";
    int cores = 4;
    int clients = 10;
    bool report = false;
    bool streaming = false;
    bool decode_cache = true;
    int tnt_memo_bits = 6;
    int threads = 0;  // 0 = default pool (hardware concurrency)
    int shards = 0;   // 0 = single-node session (no control plane)
    net::NetSpec net;
    std::string wal_dir;
    std::uint64_t snapshot_interval = 8;
    std::string crash_at;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--period-ms")
            period_ms = std::atof(next());
        else if (arg == "--budget-mb")
            budget_mb = std::strtoull(next(), nullptr, 10);
        else if (arg == "--backend")
            backend = next();
        else if (arg == "--cores")
            cores = std::atoi(next());
        else if (arg == "--clients")
            clients = std::atoi(next());
        else if (arg == "--report")
            report = true;
        else if (arg == "--streaming")
            streaming = true;
        else if (arg == "--no-decode-cache")
            decode_cache = false;
        else if (arg == "--tnt-memo-bits")
            tnt_memo_bits = std::atoi(next());
        else if (arg == "--threads")
            threads = std::atoi(next());
        else if (arg == "--shards")
            shards = std::atoi(next());
        else if (arg == "--net")
            net.enabled = true;
        else if (arg == "--loss")
            net.drop_rate = std::atof(next());
        else if (arg == "--reorder")
            net.reorder_rate = std::atof(next());
        else if (arg == "--duplicate")
            net.duplicate_rate = std::atof(next());
        else if (arg == "--link-latency-us")
            net.link_latency_us = std::atof(next());
        else if (arg == "--wal")
            wal_dir = next();
        else if (arg == "--snapshot-interval")
            snapshot_interval = std::strtoull(next(), nullptr, 10);
        else if (arg == "--crash-at")
            crash_at = next();
        else if (arg == "--self-trace")
            g_self_trace = next();
        else
            return usage();
    }
    if (!wal_dir.empty())
        return traceWal(app, period_ms, budget_mb, shards, threads,
                        decode_cache, tnt_memo_bits, net, wal_dir,
                        snapshot_interval, crash_at);
    if (shards > 0)
        return traceSharded(app, period_ms, budget_mb, shards, threads,
                            decode_cache, tnt_memo_bits, net);

    AppProfile profile = AppCatalog::find(app);
    ExperimentSpec spec;
    spec.node.num_cores = cores;
    WorkloadSpec w{.app = app, .target = true};
    if (profile.is_service)
        w.closed_clients = clients;
    spec.workloads.push_back(std::move(w));
    spec.backend = backend;
    spec.session.period = static_cast<Cycles>(
        period_ms * static_cast<double>(kCyclesPerMs));
    spec.session.budget_mb = budget_mb;
    spec.decode = true;
    spec.keep_traces = report;
    spec.decode_threads = threads;
    spec.streaming = streaming;
    spec.decode_cache = decode_cache;
    spec.tnt_memo_bits = tnt_memo_bits;

    std::printf("tracing '%s' with %s for %.0f ms on a %d-core node "
                "(budget %llu MB)...\n",
                app.c_str(), backend.c_str(), period_ms, cores,
                (unsigned long long)budget_mb);
    ExperimentResult r = Testbed::run(spec);
    if (net.enabled) {
        // Route the result through the collection plane. stdout stays
        // byte-comparable with the in-process run (the ctest pins it);
        // the transport telemetry goes to stderr.
        CollectionOutcome co = collectSessionResult(
            r, net, collectSeed(spec.seed, 0), app,
            &metrics::Registry::global());
        note("existctl",
             "collection plane: %llu batches (+%llu "
             "retransmits), %llu acks, %llu dropped frames, "
             "%.1f KB on wire, %s",
             (unsigned long long)co.agents.batches_sent,
             (unsigned long long)co.agents.retransmits,
             (unsigned long long)co.ingest.acks_sent,
             (unsigned long long)co.fabric.frames_dropped,
             co.fabric.bytes_on_wire / 1024.0,
             co.degraded != 0 ? "DEGRADED (summary only)"
                              : "payload intact");
    }
    const AppResult &a = r.at(app);

    TableWriter table({"Metric", "Value"});
    table.row({"instructions retired", std::to_string(a.insns)});
    table.row({"CPI", TableWriter::num(a.cpi, 3)});
    table.row({"requests completed", std::to_string(a.completed)});
    table.row({"trace data (MB)",
               TableWriter::mb(r.backend_stats.trace_real_bytes)});
    table.row({"dropped (MB)",
               TableWriter::mb(r.backend_stats.dropped_real_bytes)});
    table.row({"control operations",
               std::to_string(r.backend_stats.control_ops)});
    table.row({"RTIT MSR writes",
               std::to_string(r.backend_stats.msr_writes)});
    table.row({"decoded branches",
               std::to_string(r.decoded_branches)});
    table.row({"coverage",
               TableWriter::pct(r.accuracy_coverage, 1)});
    table.row({"Wall accuracy",
               TableWriter::pct(r.accuracy_wall, 1)});
    table.print();
    // Wall-clock, so stderr: stdout stays byte-comparable across
    // thread counts and decode modes.
    note("existctl", "report ready %.2f ms after trace end (%s decode)",
         r.report_latency_s * 1e3, r.streamed ? "streaming" : "batch");

    if (report && !r.raw_traces.empty()) {
        auto binary = Testbed::binaryForApp(app);
        DecodeOptions ropts;
        ropts.block_cache = decode_cache;
        ropts.tnt_memo_bits = tnt_memo_bits;
        ParallelDecoder decoder(binary.get(), ropts, threads);
        std::vector<std::pair<CoreId, DecodedTrace>> decoded =
            decoder.decodeAll(r.raw_traces);
        std::printf("\n%s", BehaviorReport::synthesize(
                                *binary, decoded, r.switch_log)
                                .c_str());
    }
    return 0;
}

int
cmdCluster(int argc, char **argv)
{
    int threads = 0;
    std::vector<const char *> manifests;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fputs("missing value for --threads\n", stderr);
                return 2;
            }
            threads = std::atoi(argv[++i]);
        } else {
            manifests.push_back(argv[i]);
        }
    }
    if (manifests.empty())
        return usage();

    ClusterConfig cc;
    cc.num_nodes = 10;
    cc.cores_per_node = 6;
    Cluster cluster(cc);
    cluster.deploy("Search1", 8);
    cluster.deploy("Search2", 6);
    cluster.deploy("Cache", 6);
    cluster.deploy("Pred", 4);
    cluster.deploy("Agent", 10);
    Master master(&cluster, {}, threads);

    std::vector<std::uint64_t> ids;
    for (const char *manifest : manifests)
        ids.push_back(master.apply(manifest));
    master.reconcile();
    printReports(master, ids);
    return 0;
}

/** Reconcile `manifests` on the demo cluster through a ShardedMaster
 *  recording into the global registry (metrics/top/dump-flight share
 *  this to put live traffic behind their views). Returns the shard
 *  count actually used. */
int
reconcileDemoManifests(const std::vector<const char *> &manifests,
                       int shards, int threads)
{
    ClusterConfig cc;
    cc.num_nodes = 10;
    cc.cores_per_node = 6;
    Cluster cluster(cc);
    cluster.deploy("Search1", 8);
    cluster.deploy("Search2", 6);
    cluster.deploy("Cache", 6);
    cluster.deploy("Pred", 4);
    cluster.deploy("Agent", 10);
    ShardedMaster master(&cluster, {}, shards, threads);
    for (const char *manifest : manifests)
        master.apply(manifest);
    master.reconcile();
    return master.shardCount();
}

int
cmdMetrics(int argc, char **argv)
{
    int threads = 0;
    int shards = 0;
    std::vector<const char *> manifests;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 ||
            std::strcmp(argv[i], "--shards") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             argv[i]);
                return 2;
            }
            (std::strcmp(argv[i], "--shards") == 0 ? shards
                                                   : threads) =
                std::atoi(argv[i + 1]);
            ++i;
        } else {
            manifests.push_back(argv[i]);
        }
    }

    if (!manifests.empty()) {
        int used = reconcileDemoManifests(manifests, shards, threads);
        note("existctl", "reconciled %zu requests on %d shards",
             manifests.size(), used);
    }
    std::printf("%s\n", metrics::Registry::global().toJson().c_str());
    return 0;
}

/** `top`: the metrics registry as one sorted table, optionally
 *  redrawn N times — a poor man's `top` over the control plane. */
int
cmdTop(int argc, char **argv)
{
    int threads = 0;
    int shards = 0;
    int iterations = 1;
    int interval_ms = 500;
    std::vector<const char *> manifests;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            threads = std::atoi(next());
        else if (arg == "--shards")
            shards = std::atoi(next());
        else if (arg == "--iterations")
            iterations = std::atoi(next());
        else if (arg == "--interval-ms")
            interval_ms = std::atoi(next());
        else
            manifests.push_back(argv[i]);
    }
    if (!manifests.empty()) {
        int used = reconcileDemoManifests(manifests, shards, threads);
        note("existctl", "reconciled %zu requests on %d shards",
             manifests.size(), used);
    }

    metrics::Registry &reg = metrics::Registry::global();
    for (int it = 0; it < iterations; ++it) {
        if (it > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
            std::printf("\n");
        }
        TableWriter table({"Metric", "Type", "Value"});
        for (const metrics::Registry::Sample &s : reg.samples())
            table.row({s.name, s.type, s.value});
        table.print();
        // The observability plane's own health, as telemetry.
        note("existctl",
             "obs: %llu span events across %llu threads "
             "(%llu dropped)",
             (unsigned long long)obs::eventsRecorded(),
             (unsigned long long)obs::threadsRegistered(),
             (unsigned long long)obs::threadsDropped());
    }
    return 0;
}

/** `dump-flight`: the flight recorder's last-events view on demand —
 *  the same text a crash point or fatal error prints as last words. */
int
cmdDumpFlight(int argc, char **argv)
{
    int threads = 0;
    int shards = 0;
    std::vector<const char *> manifests;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 ||
            std::strcmp(argv[i], "--shards") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             argv[i]);
                return 2;
            }
            (std::strcmp(argv[i], "--shards") == 0 ? shards
                                                   : threads) =
                std::atoi(argv[i + 1]);
            ++i;
        } else {
            manifests.push_back(argv[i]);
        }
    }
    if (!manifests.empty()) {
        int used = reconcileDemoManifests(manifests, shards, threads);
        note("existctl", "reconciled %zu requests on %d shards",
             manifests.size(), used);
    }
    std::fputs(obs::flightDumpText(64).c_str(), stdout);
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "list-apps")
        return cmdListApps();
    if (cmd == "trace")
        return cmdTrace(argc - 2, argv + 2);
    if (cmd == "cluster")
        return cmdCluster(argc - 2, argv + 2);
    if (cmd == "metrics")
        return cmdMetrics(argc - 2, argv + 2);
    if (cmd == "recover")
        return cmdRecover(argc - 2, argv + 2);
    if (cmd == "top")
        return cmdTop(argc - 2, argv + 2);
    if (cmd == "dump-flight")
        return cmdDumpFlight(argc - 2, argv + 2);
    return usage();
}

}  // namespace

int
main(int argc, char **argv)
{
    obs::setThreadName("main");
    int rc;
    {
        // Scoped so the top-level span closes before export below.
        EXIST_SPAN("existctl.run",
                   obs::corrId(static_cast<std::uint64_t>(argc)));
        rc = run(argc, argv);
    }
    if (!g_self_trace.empty()) {
        // File IO lives here, not in src/obs (raw-file-io lint).
        std::string json = obs::chromeTraceJson();
        std::FILE *f = std::fopen(g_self_trace.c_str(), "wb");
        if (f == nullptr) {
            logLine(LogLevel::kError, "existctl",
                    "cannot write self-trace %s", g_self_trace.c_str());
            return rc != 0 ? rc : 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        note("existctl",
             "self-trace: %llu events from %llu threads "
             "(%llu dropped) -> %s (%zu bytes)",
             (unsigned long long)obs::eventsRecorded(),
             (unsigned long long)obs::threadsRegistered(),
             (unsigned long long)obs::threadsDropped(),
             g_self_trace.c_str(), json.size());
    }
    return rc;
}
