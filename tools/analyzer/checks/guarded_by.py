"""Check 2: guarded-by completeness.

The PR 4 annotations only help while they are present: a field added
to a lock-bearing class after the annotation pass silently escapes
both clang's -Wthread-safety (which warns on *annotated* members) and
review. This pass closes the gap from the other side: any member of a
class that owns an exist::Mutex, written at least once while one of
the class's own mutexes is held, must carry EXIST_GUARDED_BY /
EXIST_PT_GUARDED_BY.

Exempt by construction: atomics (their own synchronization), const /
static / constexpr members, condition variables, std::function
callback slots (set at init, invoked through the owner's locking
discipline), and locals that shadow member names.

Rule: unguarded-member (reported at the member's declaration).
"""

from __future__ import annotations

from ast_model import Finding


def _related(cls: str, qname: str) -> bool:
    """True when `cls` names `qname` or a class lexically enclosing
    it, tolerant of namespace-qualification differences."""
    if not cls:
        return False
    return ("::" + cls + "::") in ("::" + qname + "::")


def run(index) -> list[Finding]:
    findings: list[Finding] = []
    for c in index.classes.values():
        if not c.mutexes:
            continue
        own_mutexes = {m.name for m in c.mutexes}
        members = {m.name: m for m in c.members}
        flagged: set[str] = set()
        for q, f in index.functions.items():
            if not _related(f.cls, c.qname):
                continue
            for w in f.writes:
                m = members.get(w.member)
                if m is None or w.member in flagged:
                    continue
                if w.member in f.local_types:
                    continue  # a local shadows the member name
                if not (set(w.held) & own_mutexes):
                    continue  # not a critical section of this class
                if (m.guarded_by or m.pt_guarded_by or m.is_atomic or
                        m.is_const or m.is_static or m.is_condvar or
                        m.is_func_type):
                    continue
                flagged.add(w.member)
                held = sorted(set(w.held) & own_mutexes)
                findings.append(Finding(
                    check="guarded-by", rule="unguarded-member",
                    file=c.file, line=m.line,
                    message=f"member '{c.qname}::{m.name}' is written "
                            f"under {'/'.join(held)} "
                            f"(e.g. {f.file}:{w.line}) but carries no "
                            "EXIST_GUARDED_BY annotation",
                    function=q))
    return findings
