"""Check 1: static lock-rank graph.

The static complement of the PR 4 runtime validator
(src/util/lock_order.{h,cc}): instead of checking the orders an
execution happens to exercise, build the full interprocedural
acquires-while-holding edge set — including edges that only exist
through CommitLog sequenced actions, EventQueue callbacks, and
std::function callback slots — and reject any edge that does not go
strictly *up* the kPool(0) < ... < kWal(45) < kStore < kMetrics <
kLeaf(100) hierarchy.

Rules
  unranked-mutex    an exist::Mutex declared without a LockRank
  lock-rank-order   acquiring rank <= a rank already held
  raw-locking       std::mutex & friends outside the wrapper homes
                    (shared rule id with determinism_lint.py so one
                    waiver covers both layers)
"""

from __future__ import annotations

from ast_model import LOCK_RANKS, RANK_NAMES, UNRANKED, Finding

WRAPPER_HOMES = (
    "src/util/thread_annotations.h",
    "src/util/lock_order.h",
    "src/util/lock_order.cc",
)


def _rank_name(rank: int) -> str:
    return RANK_NAMES.get(rank, f"rank{rank}")


def _chain_str(chain: tuple) -> str:
    parts = []
    for x in chain:
        if isinstance(x, str):
            parts.append(x.rsplit("::", 1)[-1])
    return " -> ".join(parts[:5])


def run(index) -> list[Finding]:
    findings: list[Finding] = []

    for key in sorted(index.mutex_by_key):
        decl = index.mutex_by_key[key]
        if decl.rank == UNRANKED:
            findings.append(Finding(
                check="lock-rank", rule="unranked-mutex",
                file=decl.file, line=decl.line,
                message=f"mutex '{key}' is declared without a LockRank; "
                        "every exist::Mutex must name its place in the "
                        "hierarchy"))

    for tu in index.tus:
        if tu.path in WRAPPER_HOMES:
            continue
        for tok, line in tu.raw_sync_uses:
            findings.append(Finding(
                check="lock-rank", rule="raw-locking",
                file=tu.path, line=line,
                message=f"raw {tok} bypasses exist::Mutex and escapes "
                        "rank enforcement; use the util wrappers"))

    seen: set[tuple] = set()

    def edge(file, line, held_decl, tgt_decl, fn, via=""):
        if held_decl.key == tgt_decl.key:
            return  # instance aliasing; the runtime validator owns this
        if held_decl.rank == UNRANKED or tgt_decl.rank == UNRANKED:
            return  # unranked already reported above
        if held_decl.rank < tgt_decl.rank:
            return
        dkey = (file, line, held_decl.key, tgt_decl.key)
        if dkey in seen:
            return
        seen.add(dkey)
        rel = "==" if held_decl.rank == tgt_decl.rank else ">"
        msg = (f"acquires '{tgt_decl.key}' "
               f"({_rank_name(tgt_decl.rank)}) while holding "
               f"'{held_decl.key}' ({_rank_name(held_decl.rank)}); "
               f"{_rank_name(held_decl.rank)} {rel} "
               f"{_rank_name(tgt_decl.rank)} inverts the hierarchy")
        if via:
            msg += f" [via {via}]"
        findings.append(Finding(
            check="lock-rank", rule="lock-rank-order",
            file=file, line=line, message=msg, function=fn))

    # Direct edges: a lock op executed with other mutexes held.
    for q, f in index.functions.items():
        for op in f.lock_ops:
            if op.op not in ("acquire", "scoped"):
                continue
            tgt = index.mutex_for_expr(op.target, f.cls)
            if tgt is None:
                continue
            for h in op.held:
                hd = index.mutex_for_expr(h, f.cls)
                if hd is not None:
                    edge(f.file, op.line, hd, tgt, q)

    # Interprocedural edges: calling, with locks held, a function that
    # may (transitively) acquire.
    acq = index.may_acquire()
    for q, f in index.functions.items():
        for site in f.calls:
            if not site.held:
                continue
            for callee in index.resolve_call(site, f):
                for key, (rank, chain) in acq.get(callee, {}).items():
                    tgt = index.mutex_by_key.get(key)
                    if tgt is None:
                        continue
                    for h in site.held:
                        hd = index.mutex_for_expr(h, f.cls)
                        if hd is not None:
                            edge(f.file, site.line, hd, tgt, q,
                                 via=_chain_str(chain))
    return findings
