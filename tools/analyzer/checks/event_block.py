"""Check 3: event-loop blocking ban.

The simulated fabric and the sequenced publish path are both driven
by single-threaded executors: sim/EventQueue callbacks and CommitLog
sequenced actions. A blocking primitive reachable from either stalls
every later event / every later sequence number, so the ban is on the
*reachability*, not the primitive: the pass roots a BFS at every
lambda handed to EventQueue::schedule{,After} or CommitLog::commit
(following std::function callback slots and nested lambdas, but not
ThreadPool tasks, which run on worker threads) and reports:

  event-blocking-call  a condvar wait, sleep, file flush, thread
                       join, or future wait on any reachable path
  event-slow-mutex     acquiring a below-leaf-rank mutex that some
                       critical section in the program holds *across*
                       a blocking primitive — waiting on such a mutex
                       can block the loop for as long as the blocking
                       holder takes

Plain short-hold mutex acquisitions stay legal: the event-driven core
is allowed to synchronize, it is not allowed to wait on something
unbounded. Deliberate exceptions (the WAL's flush-on-commit
durability contract) are allowlisted with justifications rather than
special-cased here.

The pass also guards the self-tracing plane's emit side (DESIGN.md
§14): a second BFS roots at the span-emission entry points defined
under src/obs/ (begin/end/instant/flow*/sim* and the Span RAII
bodies), which run inline on every instrumented thread — including
inside EventQueue callbacks and CommitLog actions — so the bar is
stricter than for the event loop itself:

  span-blocking-call   any blocking primitive reachable from a span
                       emission entry point
  span-hot-path-lock   any mutex acquisition (even short-hold, even
                       leaf-rank) reachable from span emission — the
                       hot path must stay wait-free or a collector
                       holding the lock stalls every instrumented
                       thread at once

The read side (snapshot/export/dump under the kObs collector lock) is
not rooted: collectors are allowed to synchronize with each other.
"""

from __future__ import annotations

from ast_model import CTX_COMMIT, CTX_EVENT, LOCK_RANKS, UNRANKED, Finding

BLOCKING_CALL_TAILS = {
    "fflush", "fsync", "fdatasync", "flush", "sleep_for", "sleep_until",
    "usleep", "nanosleep", "join", "wait_for", "wait_until", "wait",
}

KIND_DESC = {
    "condvar-wait": "condition-variable wait",
    "sleep": "sleep",
    "flush": "file flush",
    "join": "thread join",
    "future-wait": "future/timed wait",
}

# Span-emission entry points under src/obs/: everything that runs
# inline on an instrumented thread when a macro fires.  The read-side
# collectors (snapshot/chromeTraceJson/flightDump*) are deliberately
# absent — they hold the kObs lock and may block each other.
SPAN_EMIT_TAILS = {
    "begin", "end", "instant", "flowBegin", "flowEnd",
    "simInstant", "simSpan", "simFlowBegin", "simFlowEnd",
    "emitEvent", "setThreadName", "Span", "~Span",
}


def _tail(callee: str) -> str:
    for sep in (".", "->", "::"):
        if sep in callee:
            callee = callee.rsplit(sep, 1)[-1]
    return callee


def _slow_mutexes(index) -> dict[str, tuple]:
    """Mutex keys held across a blocking primitive anywhere in the
    program, mapped to one witness (function, line)."""
    slow: dict[str, tuple] = {}

    def note(tails, f, line):
        for h in tails:
            decl = index.mutex_for_expr(h, f.cls)
            if decl is not None:
                slow.setdefault(decl.key, (f.qname, line))

    for f in index.functions.values():
        for site in f.calls:
            if site.held and _tail(site.callee) in BLOCKING_CALL_TAILS:
                note(site.held, f, site.line)
        for op in f.lock_ops:
            if op.op == "wait":
                note([op.target] + list(op.held), f, op.line)
    return slow


def _path_str(path: tuple) -> str:
    tails = [p.rsplit("::", 1)[-1] if "<lambda" not in p
             else "<lambda@" + p.split("<lambda:")[1].split(":")[0] + ">"
             for p in path]
    if len(tails) > 5:
        tails = tails[:2] + ["..."] + tails[-2:]
    return " -> ".join(tails)


def _span_hot_path_findings(index) -> list[Finding]:
    roots = [q for q, f in index.functions.items()
             if f.file.startswith("src/obs/")
             and _tail(q) in SPAN_EMIT_TAILS]
    if not roots:
        return []
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for q, path in sorted(index.reachable_from(roots).items()):
        f = index.functions[q]
        for b in f.blocks:
            key = (f.file, b.line, "span-blocking-call")
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                check="event-block", rule="span-blocking-call",
                file=f.file, line=b.line,
                message=f"{KIND_DESC.get(b.kind, b.kind)} "
                        f"('{b.detail}') is reachable from span "
                        f"emission [{_path_str(path)}]",
                function=q))
        for op in f.lock_ops:
            if op.op not in ("acquire", "scoped"):
                continue
            key = (f.file, op.line, "span-hot-path-lock")
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                check="event-block", rule="span-hot-path-lock",
                file=f.file, line=op.line,
                message=f"acquires '{op.target}' on the span-emission "
                        f"hot path, which must stay wait-free "
                        f"[{_path_str(path)}]",
                function=q))
    return findings


def run(index) -> list[Finding]:
    findings_obs = _span_hot_path_findings(index)
    roots = [q for q, f in index.functions.items()
             if f.context in (CTX_EVENT, CTX_COMMIT)]
    if not roots:
        return findings_obs
    reach = index.reachable_from(roots)
    slow = _slow_mutexes(index)
    leaf = LOCK_RANKS["kLeaf"]

    findings: list[Finding] = list(findings_obs)
    seen: set[tuple] = set()
    for q, path in sorted(reach.items()):
        f = index.functions[q]
        ctx = index.functions[path[0]].context
        where = ("EventQueue callback" if ctx == CTX_EVENT
                 else "CommitLog action")
        for b in f.blocks:
            key = (f.file, b.line, "event-blocking-call")
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                check="event-block", rule="event-blocking-call",
                file=f.file, line=b.line,
                message=f"{KIND_DESC.get(b.kind, b.kind)} "
                        f"('{b.detail}') is reachable from a {where} "
                        f"[{_path_str(path)}]",
                function=q))
        for op in f.lock_ops:
            if op.op not in ("acquire", "scoped"):
                continue
            decl = index.mutex_for_expr(op.target, f.cls)
            if decl is None or decl.key not in slow:
                continue
            if decl.rank != UNRANKED and decl.rank >= leaf:
                continue
            key = (f.file, op.line, "event-slow-mutex")
            if key in seen:
                continue
            seen.add(key)
            wfn, wline = slow[decl.key]
            findings.append(Finding(
                check="event-block", rule="event-slow-mutex",
                file=f.file, line=op.line,
                message=f"acquires '{decl.key}', which "
                        f"{wfn.rsplit('::', 1)[-1]}:{wline} holds "
                        f"across a blocking call, from a {where} "
                        f"[{_path_str(path)}]",
                function=q))
    return findings
