"""Check passes for exist-analyzer.

Each module exposes `run(index) -> list[Finding]` over the shared
whole-program `ast_model.Index`; the driver owns allowlisting and
output, so passes simply report every violation they can prove.
"""

from checks import determinism, event_block, exhaustive, guarded_by, lock_rank

ALL_CHECKS = {
    "lock-rank": lock_rank.run,
    "guarded-by": guarded_by.run,
    "event-block": event_block.run,
    "determinism": determinism.run,
    "exhaustive": exhaustive.run,
}
