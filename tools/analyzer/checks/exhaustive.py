"""Check 5: wire/WAL exhaustiveness.

Adding a frame or WAL record kind must not be able to half-land: the
enumerator has to show up in *every* role of its protocol — encode,
decode, symbolic name, replay/dispatch — or a node that emits the new
kind produces bytes a peer (or recovery) silently drops.

The role tables below name the handler functions by tail; a role with
no handler present in the indexed program is skipped, which is what
lets fixtures exercise one role at a time and keeps the check inert
for, e.g., header-only builds.

Rule: enum-role-missing (reported at the enum definition).
"""

from __future__ import annotations

from ast_model import Finding

# enum tail -> role -> handler-function tails whose bodies together
# must mention every enumerator.
ENUM_ROLES = {
    "MsgType": {
        "encode": ("encodeFrame", "seal"),
        "decode": ("decodeFrame",),
        "ingest-dispatch": ("onFrame",),
    },
    "RecordType": {
        "encode": ("encodeRecord",),
        "decode": ("decodeRecord",),
        "name": ("recordTypeName",),
        "replay": ("recover",),
    },
}


def run(index) -> list[Finding]:
    findings: list[Finding] = []
    for enum_tail, roles in ENUM_ROLES.items():
        edef = index.enums.get(enum_tail)
        if edef is None:
            continue
        for role, fn_tails in sorted(roles.items()):
            fns = []
            for tail in fn_tails:
                for qn in index.methods_by_tail.get(tail, []):
                    fns.append(index.functions[qn])
            if not fns:
                continue
            mentioned = set()
            for f in fns:
                for m in f.enum_mentions:
                    if m.enum == enum_tail or \
                            m.enum.endswith("::" + enum_tail):
                        mentioned.add(m.enumerator)
            for e in edef.enumerators:
                if e not in mentioned:
                    findings.append(Finding(
                        check="exhaustive", rule="enum-role-missing",
                        file=edef.file, line=edef.line,
                        message=f"{edef.qname}::{e} has no handling "
                                f"in the '{role}' role "
                                f"({', '.join(fn_tails)}); the "
                                "protocol would half-land"))
    return findings
