"""Check 4: determinism dataflow.

Supersedes the unordered-iteration regexes in determinism_lint.py
with an AST-accurate pass that is alias-aware (follows `using`
aliases to the underlying container) and taint-aware (iteration order
escaping through a collected-into local or a return value is still a
violation, even when the serialization loop itself runs over an
innocent std::vector).

Rules (ids shared with determinism_lint.py where they overlap, so a
single allowlist waiver covers both layers):

  unordered-iteration      iterating an unordered container either
                           (a) inside the bit-identical-output
                           subsystems, or (b) anywhere, when the loop
                           body feeds a serialization sink
  unordered-taint-return   returning a container populated in
                           unordered iteration order without sorting
  pointer-keyed-container  map/set keyed by pointer value

Mitigation is recognized in-function: passing the collected container
to std::sort (or member .sort()) clears the taint.
"""

from __future__ import annotations

import re

from ast_model import Finding

# Subsystems whose outputs must be bit-identical across runs
# (mirrors ORDERED_OUTPUT_DIRS in determinism_lint.py).
ORDERED_OUTPUT_DIRS = (
    "src/analysis/", "src/cluster/", "src/decode/", "src/core/",
    "src/hwtrace/",
)

_PTR_KEY_RE = re.compile(
    r"(?:unordered_)?(?:map|set|multimap|multiset)<[^,>]*\*")
_ID_RE = re.compile(r"[A-Za-z_]\w*")


def _expr_tail(expr: str) -> str:
    ids = _ID_RE.findall(expr)
    return ids[-1] if ids else ""


def _is_unordered(index, f, tail: str) -> bool:
    """Is identifier `tail` (local or member) of unordered type?"""
    t = f.local_types.get(tail)
    if t is not None:
        return index.is_unordered_type(t) or "unordered_" in t
    cls = f.cls
    for qname, c in index.classes.items():
        if not cls or ("::" + cls + "::") not in ("::" + qname + "::"):
            continue
        for m in c.members:
            if m.name == tail:
                return m.is_unordered or \
                    index.is_unordered_type(m.type_text)
    return False


def run(index) -> list[Finding]:
    findings: list[Finding] = []

    for q, f in index.functions.items():
        in_ordered_dir = f.file.startswith(ORDERED_OUTPUT_DIRS)
        tainted: set[str] = set()
        for it in f.iters:
            tail = _expr_tail(it.container)
            unordered = _is_unordered(index, f, tail)
            taint_src = tail in tainted
            if not unordered and not taint_src:
                continue
            origin = ("unordered container" if unordered
                      else "container populated in unordered order")
            if it.sink_calls:
                findings.append(Finding(
                    check="determinism", rule="unordered-iteration",
                    file=f.file, line=it.sink_line or it.line,
                    message=f"loop over {origin} '{it.container}' "
                            f"feeds serialization sink "
                            f"'{it.sink_calls[0]}'; iteration order is "
                            "nondeterministic",
                    function=q))
            elif unordered and in_ordered_dir and not (
                    it.collects_into and
                    it.collects_into in f.sorted_idents):
                # Collect-then-sort is the sanctioned mitigation; a
                # bare unordered walk in these subsystems is not.
                findings.append(Finding(
                    check="determinism", rule="unordered-iteration",
                    file=f.file, line=it.line,
                    message=f"iteration over {origin} "
                            f"'{it.container}' in a "
                            "bit-identical-output subsystem; order "
                            "must not observably leak",
                    function=q))
            if it.collects_into and \
                    it.collects_into not in f.sorted_idents:
                tainted.add(it.collects_into)
        for r in f.returned_idents:
            if r in tainted and r not in f.sorted_idents:
                findings.append(Finding(
                    check="determinism", rule="unordered-taint-return",
                    file=f.file, line=f.line,
                    message=f"'{q.rsplit('::', 1)[-1]}' returns "
                            f"'{r}', populated in unordered iteration "
                            "order and never sorted; callers inherit "
                            "the nondeterminism",
                    function=q))
                break

    for c in index.classes.values():
        if not c.file.startswith(ORDERED_OUTPUT_DIRS):
            continue
        for m in c.members:
            t = index.resolve_type(m.type_text)
            if _PTR_KEY_RE.search(t):
                findings.append(Finding(
                    check="determinism", rule="pointer-keyed-container",
                    file=c.file, line=m.line,
                    message=f"member '{c.qname}::{m.name}' is keyed "
                            "by pointer value; addresses vary across "
                            "runs, so any ordered walk is "
                            "nondeterministic"))
    return findings
