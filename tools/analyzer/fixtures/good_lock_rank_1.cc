// analyzer-virtual-path: src/fixture/lock_rank_ok.cc
// Acquisitions that walk strictly up the hierarchy (kPool -> kStore)
// are the sanctioned pattern.
namespace exist {

class Publisher {
 public:
  void publish() {
    MutexLock lk(pool_mu_);
    flush();
  }

  void flush() {
    MutexLock lk(store_mu_);
    total_ = total_ + 1;
  }

 private:
  Mutex pool_mu_{LockRank::kPool, "fixture.pool"};
  Mutex store_mu_{LockRank::kStore, "fixture.store"};
  long total_ EXIST_GUARDED_BY(store_mu_) = 0;
};

}  // namespace exist
