// analyzer-virtual-path: src/cluster/fixture_det_taint.cc
// The taint the regex lint cannot see: the serialization loop runs
// over an innocent vector, but the vector was *populated* in
// unordered iteration order and never sorted.
namespace exist {

class ReportWriter {
 public:
  void serialize(net::ByteWriter &w) {
    std::vector<unsigned long> rows;
    for (const auto &kv : index_) {
      rows.push_back(kv.second);
    }
    for (unsigned long v : rows) {
      w.putU64(v);
    }
  }

 private:
  std::unordered_map<unsigned long, unsigned long> index_;
};

}  // namespace exist
