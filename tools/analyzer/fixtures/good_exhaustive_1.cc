// analyzer-virtual-path: src/net/fixture_proto_ok.cc
// Every enumerator appears in every present role.
namespace net {

enum class MsgType : unsigned char {
  kData = 1,
  kAck = 2,
  kPing = 3,
};

inline int encodeFrame(MsgType t) {
  if (t == MsgType::kData) {
    return 1;
  }
  if (t == MsgType::kAck) {
    return 2;
  }
  if (t == MsgType::kPing) {
    return 3;
  }
  return 0;
}

inline int decodeFrame(unsigned char b) {
  switch (static_cast<MsgType>(b)) {
    case MsgType::kData:
      return 1;
    case MsgType::kAck:
      return 2;
    case MsgType::kPing:
      return 3;
  }
  return 0;
}

}  // namespace net
