// analyzer-virtual-path: src/fixture/event_block_slow_mutex.cc
// The commit action takes a mutex that another path holds across an
// fflush: the action can block for as long as the flush takes.
namespace exist {

class Sink {
 public:
  void persist() {
    MutexLock lk(mu_);
    fflush(out_);  // mu_ held across a blocking flush
  }

  void publish(CommitLog &log, long seq) {
    log.commit(seq, [this]() {
      MutexLock lk(mu_);  // waits on the flush-holding mutex
      seals_ = seals_ + 1;  // lint-allow: unguarded-member
    });
  }

 private:
  Mutex mu_{LockRank::kStore, "fixture.sink"};
  FILE *out_ = nullptr;
  long seals_ = 0;
};

}  // namespace exist
