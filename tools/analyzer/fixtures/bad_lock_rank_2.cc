// analyzer-virtual-path: src/fixture/lock_rank_unranked.cc
// An exist::Mutex declared without naming its LockRank: invisible to
// the hierarchy, so every edge through it goes unchecked.
namespace exist {

class Cache {
 public:
  void put(long v) {
    MutexLock lk(mu_);
    last_ = v;  // lint-allow: unguarded-member
  }

 private:
  Mutex mu_;  // no LockRank
  long last_ = 0;
};

}  // namespace exist
