// analyzer-virtual-path: src/obs/fixture_locked_emit.cc
// A span-emission hot path that synchronizes with a mutex and sleeps
// while registering: every instrumented thread — including event-loop
// callbacks — would stall behind the collector holding the lock.
namespace exist {
namespace obs {

class LockedPlane {
 public:
  void instant(const char *name, unsigned long corr) {
    MutexLock lk(ring_mu_);
    registerSlow();
    last_name_ = name;  // lint-allow: unguarded-member
    last_corr_ = corr;  // lint-allow: unguarded-member
  }

  void registerSlow() {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

 private:
  Mutex ring_mu_{LockRank::kObs, "fixture.obs.ring"};
  const char *last_name_ = nullptr;
  unsigned long last_corr_ = 0;
};

}  // namespace obs
}  // namespace exist
