// analyzer-virtual-path: src/fixture/guarded_by_ok.cc
// Annotated members, atomics, and locals shadowing member names are
// all fine.
namespace exist {

class Counter {
 public:
  void bump() {
    MutexLock lk(mu_);
    hits_ = hits_ + 1;
  }

  void peek() {
    long hits_ = 0;  // local shadow, not the member
    hits_ = hits_ + 1;
    (void)hits_;
  }

 private:
  Mutex mu_{LockRank::kMetrics, "fixture.counter"};
  long hits_ EXIST_GUARDED_BY(mu_) = 0;
  std::atomic<long> fast_hits_{0};
};

}  // namespace exist
