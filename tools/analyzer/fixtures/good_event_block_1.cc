// analyzer-virtual-path: src/fixture/event_block_ok.cc
// Short-hold synchronization inside an event callback is legal: no
// path from the callback reaches a blocking primitive, and nothing
// holds mu_ across one.
namespace exist {

class Node {
 public:
  void start(sim::EventQueue &queue) {
    queue.schedule(10, [this]() { tick(); });
  }

  void tick() {
    MutexLock lk(mu_);
    ticks_ = ticks_ + 1;
  }

  void slowMaintenance() {
    // Blocking is fine on a plain thread as long as it does not
    // overlap a mutex the event path takes.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  Mutex mu_{LockRank::kLeaf, "fixture.node"};
  long ticks_ EXIST_GUARDED_BY(mu_) = 0;
};

}  // namespace exist
