// analyzer-virtual-path: src/fixture/lock_rank_inversion.cc
// A kStore holder reaching a kPool acquisition through a call chain:
// the classic inversion the runtime validator only sees if a test
// happens to execute both locks on one thread.
namespace exist {

class Publisher {
 public:
  void publish() {
    MutexLock lk(store_mu_);
    refill();  // transitively acquires pool_mu_ (kPool) under kStore
  }

  void refill() {
    MutexLock lk(pool_mu_);
    spare_ = spare_ + 1;  // lint-allow: unguarded-member
  }

 private:
  Mutex store_mu_{LockRank::kStore, "fixture.store"};
  Mutex pool_mu_{LockRank::kPool, "fixture.pool"};
  long spare_ = 0;
};

}  // namespace exist
