// analyzer-virtual-path: src/net/fixture_proto_half.cc
// kPing exists in the enum and decodes, but the encode role never
// mentions it: a peer can receive what no node can send — the
// half-landed protocol change the check exists to catch.
namespace net {

enum class MsgType : unsigned char {
  kData = 1,
  kAck = 2,
  kPing = 3,
};

inline int encodeFrame(MsgType t) {
  if (t == MsgType::kData) {
    return 1;
  }
  if (t == MsgType::kAck) {
    return 2;
  }
  return 0;  // kPing unhandled
}

inline int decodeFrame(unsigned char b) {
  switch (static_cast<MsgType>(b)) {
    case MsgType::kData:
      return 1;
    case MsgType::kAck:
      return 2;
    case MsgType::kPing:
      return 3;
  }
  return 0;
}

}  // namespace net
