// analyzer-virtual-path: src/fixture/event_block_sleep.cc
// A sleep reachable from an EventQueue callback through an ordinary
// method call: stalls every later event in the simulation.
namespace exist {

class Node {
 public:
  void start(sim::EventQueue &queue) {
    queue.schedule(10, [this]() { tick(); });
  }

  void tick() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ticks_ = ticks_ + 1;
  }

 private:
  long ticks_ = 0;
};

}  // namespace exist
