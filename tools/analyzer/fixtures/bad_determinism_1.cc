// analyzer-virtual-path: src/cluster/fixture_det_sink.cc
// Serializing straight out of unordered_map iteration: byte output
// depends on hash-table layout, breaking bit-identical reports.
namespace exist {

class ReportWriter {
 public:
  void serialize(net::ByteWriter &w) {
    for (const auto &kv : index_) {
      w.putU64(kv.second);
    }
  }

 private:
  std::unordered_map<unsigned long, unsigned long> index_;
};

}  // namespace exist
