// analyzer-virtual-path: src/obs/fixture_waitfree_emit.cc
// The legal shape of the span-emission hot path: atomics only, no
// mutex, no blocking primitive anywhere reachable.  The collector
// (snapshot) may take the kObs dump lock — it is not an emit entry
// point and is never rooted by the span-hot-path pass.
namespace exist {
namespace obs {

class WaitFreePlane {
 public:
  void instant(const char *name, unsigned long corr) {
    unsigned long slot = cursor_.load();
    names_[slot & 7] = name;     // lint-allow: unguarded-member
    corrs_[slot & 7] = corr;     // lint-allow: unguarded-member
    cursor_.store(slot + 1);
  }

  unsigned long snapshot() {
    MutexLock lk(dump_mu_);
    return cursor_.load();
  }

 private:
  Mutex dump_mu_{LockRank::kObs, "fixture.obs.dump"};
  std::atomic<unsigned long> cursor_{0};
  const char *names_[8] = {};
  unsigned long corrs_[8] = {};
};

}  // namespace obs
}  // namespace exist
