// analyzer-virtual-path: src/fixture/guarded_by_missing.cc
// `hits_` is mutated inside the critical section but carries no
// EXIST_GUARDED_BY, so -Wthread-safety will never watch it.
namespace exist {

class Counter {
 public:
  void bump() {
    MutexLock lk(mu_);
    hits_ = hits_ + 1;
  }

 private:
  Mutex mu_{LockRank::kMetrics, "fixture.counter"};
  long hits_ = 0;  // written under mu_ but unannotated
};

}  // namespace exist
