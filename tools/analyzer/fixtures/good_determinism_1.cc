// analyzer-virtual-path: src/cluster/fixture_det_ok.cc
// The sanctioned shapes: serialize from an ordered map, or collect
// from an unordered one and sort before emitting.
namespace exist {

class ReportWriter {
 public:
  void serialize(net::ByteWriter &w) {
    for (const auto &kv : ordered_) {
      w.putU64(kv.second);
    }
  }

  void serializeSorted(net::ByteWriter &w) {
    std::vector<unsigned long> rows;
    for (const auto &kv : index_) {
      rows.push_back(kv.second);
    }
    std::sort(rows.begin(), rows.end());
    for (unsigned long v : rows) {
      w.putU64(v);
    }
  }

 private:
  std::map<unsigned long, unsigned long> ordered_;
  std::unordered_map<unsigned long, unsigned long> index_;
};

}  // namespace exist
