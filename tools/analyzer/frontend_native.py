"""Native frontend: a structural C++ parser for the exist source tree.

Lowering a file into `ast_model` facts requires far less than full
C++ parsing: the repo's code is written in one consistent idiom
(annotated `exist::Mutex` members with brace initializers, `MutexLock`
RAII scopes, lambdas registered into `std::function` slots, `enum
class` protocols), and this parser understands exactly those
constructs at the token level — scopes, class bodies, member
declarations with their annotation macros, function bodies with lock
operations, call expressions, lambdas, range-for loops, writes, and
enum mentions.

It is the fallback (and local-development) frontend; when a Clang
binary is available the Clang AST-dump frontend (frontend_clang.py)
lowers into the identical fact schema and cross-checks this one.
Unknown syntax never crashes the parser: anything unrecognized simply
contributes no facts, and the fixture suite (`--self-test`) pins the
constructs the checks rely on.
"""

from __future__ import annotations

import re

from cpp_lexer import CHR, ID, NUM, PREPROC, PUNCT, STR, Token, lex, match_brace
from ast_model import (
    CTX_COMMIT, CTX_EVENT, CTX_POOL, LOCK_RANKS, UNRANKED,
    CallSite, CallbackReg, ClassInfo, EnumDef, EnumMention, FunctionInfo,
    IterSite, BlockOp, LockOp, Member, MutexDecl, TranslationUnit, WriteSite,
)

# Bump to invalidate cached facts when the lowering changes.
FRONTEND_VERSION = 4

ALLOW_RE = re.compile(r"lint-allow:\s*([\w,\- ]+)")
VPATH_RE = re.compile(r"(?:lint|analyzer)-virtual-path:\s*(\S+)")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "case", "do",
    "new", "delete", "throw", "catch", "alignof", "decltype", "else",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "static_assert", "defined", "assert", "typeid", "noexcept",
}

SPECIFIERS = {
    "static", "const", "mutable", "constexpr", "inline", "explicit",
    "virtual", "extern", "friend", "typename", "volatile", "thread_local",
    "register", "consteval", "constinit", "using",
}

POST_PAREN_OK = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "try", "EXIST_REQUIRES", "EXIST_EXCLUDES", "EXIST_ACQUIRE",
    "EXIST_RELEASE", "EXIST_TRY_ACQUIRE", "EXIST_RETURN_CAPABILITY",
    "EXIST_NO_THREAD_SAFETY_ANALYSIS", "EXIST_SCOPED_CAPABILITY",
}

ANNOT_MACROS = {"EXIST_GUARDED_BY", "EXIST_PT_GUARDED_BY"}

# Lambda-taking calls that determine the executing context of the
# lambda argument.
CONTEXT_SINKS = {
    "schedule": CTX_EVENT,
    "scheduleAfter": CTX_EVENT,
    "commit": CTX_COMMIT,
    "submit": CTX_POOL,
    "parallelFor": CTX_POOL,
}

# Call tails that write data into a serialized output / accumulator —
# the sinks of the determinism dataflow check.
SINK_TAILS = {
    "putU8", "putU16", "putU32", "putU64", "putVarint", "putSVarint",
    "putString", "putBytes", "putDouble", "append", "snprintf",
    "fprintf", "sprintf", "write",
}

MUTATING_TAILS = {
    "push_back", "emplace_back", "pop_back", "push", "pop", "insert",
    "emplace", "erase", "clear", "resize", "assign", "store",
    "fetch_add", "fetch_sub", "exchange", "add", "record", "set",
    "push_front", "pop_front", "reserve",
}

BLOCKING_TAILS = {
    "sleep_for": "sleep", "sleep_until": "sleep", "usleep": "sleep",
    "nanosleep": "sleep", "fflush": "flush", "fsync": "flush",
    "fdatasync": "flush", "flush": "flush", "join": "join",
    "wait_for": "future-wait", "wait_until": "future-wait",
}

# Callee tails that take a lambda argument without being a callback
# registration: container mutators, std algorithms, thread spawns.  A
# lambda passed to one of these must not become a callback-slot
# target (or every later `x.emplace_back(...)` call would "invoke"
# the worker-thread body).
NOT_A_REGISTRATION = MUTATING_TAILS | {
    "sort", "stable_sort", "for_each", "transform", "remove_if",
    "erase_if", "find_if", "any_of", "all_of", "none_of", "count_if",
    "lower_bound", "upper_bound", "partition", "generate", "visit",
    "apply", "thread", "async", "min_element", "max_element",
}

# Lambdas handed to these run on their own thread, never in the
# caller's context.
THREAD_SPAWN_TAILS = {"thread", "async"}

RAW_SYNC = {
    "mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
    "shared_timed_mutex", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock", "condition_variable", "condition_variable_any",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}


def parse_file(rel_path: str, text: str) -> TranslationUnit:
    return _Parser(rel_path, text).run()


class _Parser:
    def __init__(self, rel_path: str, text: str):
        self.tokens, self.comments = lex(text)
        # Honor a fixture's virtual path (same convention as
        # determinism_lint) so path-scoped checks are testable.
        for ln in sorted(self.comments)[:3]:
            if m := VPATH_RE.search(self.comments[ln]):
                rel_path = m.group(1)
                break
        self.tu = TranslationUnit(path=rel_path)
        for ln, text_ in self.comments.items():
            if m := ALLOW_RE.search(text_):
                self.tu.allow_lines[ln] = {
                    r.strip() for r in m.group(1).split(",")
                }
        self._lambda_counter = 0

    # -- helpers ------------------------------------------------------------

    def _match(self, i):
        return match_brace(self.tokens, i)

    def _find_stmt_end(self, i, end):
        """Next `;` or block `{` at bracket depth 0, or closing `}` of
        the current scope.  Returns (index, kind)."""
        depth = 0
        k = i
        while k < end:
            t = self.tokens[k]
            if t.kind == PUNCT:
                if t.text in "([":
                    k = self._match(k) + 1
                    continue
                if t.text == "{":
                    return k, "{"
                if t.text == "}":
                    return k, "}"
                if t.text == ";" and depth == 0:
                    return k, ";"
            k += 1
        return end, "eof"

    def run(self) -> TranslationUnit:
        self._scan_raw_sync()
        self._parse_scope(0, len(self.tokens), ns=[], cls=None)
        return self.tu

    def _scan_raw_sync(self):
        toks = self.tokens
        for k in range(len(toks) - 2):
            if (toks[k].kind == ID and toks[k].text == "std"
                    and toks[k + 1].text == "::"
                    and toks[k + 2].kind == ID
                    and toks[k + 2].text in RAW_SYNC):
                self.tu.raw_sync_uses.append(
                    ("std::" + toks[k + 2].text, toks[k].line))

    # -- scope-level parsing ------------------------------------------------

    def _parse_scope(self, i, end, ns, cls: ClassInfo | None):
        toks = self.tokens
        while i < end:
            t = toks[i]
            if t.kind == PREPROC:
                i += 1
                continue
            if t.kind == PUNCT:
                i += 1
                continue
            if t.kind != ID:
                i += 1
                continue

            if t.text == "template":
                i = self._skip_template_clause(i)
                continue
            if t.text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":":
                i += 2
                continue
            if t.text == "namespace":
                i = self._parse_namespace(i, end, ns)
                continue
            if t.text == "using":
                i = self._parse_using(i, end)
                continue
            if t.text == "enum":
                i = self._parse_enum(i, end, ns, cls)
                continue
            if t.text in ("class", "struct") and self._is_class_def(i):
                i = self._parse_class(i, end, ns, cls)
                continue
            if t.text == "extern" and i + 1 < end and \
                    toks[i + 1].kind == STR:
                i += 2  # extern "C" [ { ]: treat the block transparently
                if i < end and toks[i].text == "{":
                    i += 1
                continue

            # Generic declaration: function definition, function
            # declaration, or variable/member declaration.
            i = self._parse_declaration(i, end, ns, cls)
        return i

    def _skip_template_clause(self, i):
        toks = self.tokens
        k = i + 1
        if k < len(toks) and toks[k].text == "<":
            depth = 0
            while k < len(toks):
                if toks[k].text == "<":
                    depth += 1
                elif toks[k].text == ">":
                    depth -= 1
                    if depth == 0:
                        return k + 1
                elif toks[k].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        return k + 1
                k += 1
        return k

    def _parse_namespace(self, i, end, ns):
        toks = self.tokens
        k = i + 1
        parts = []
        while k < end and (toks[k].kind == ID or toks[k].text == "::"):
            if toks[k].kind == ID:
                parts.append(toks[k].text)
            k += 1
        if k < end and toks[k].text == "{":
            close = self._match(k)
            self._parse_scope(k + 1, close, ns + parts, None)
            return close + 1
        return k + 1

    def _parse_using(self, i, end):
        toks = self.tokens
        stop, kind = self._find_stmt_end(i, end)
        # using Alias = some::type<...>;
        if kind == ";" and i + 2 < stop and toks[i + 1].kind == ID and \
                toks[i + 2].text == "=":
            alias = toks[i + 1].text
            rhs = "".join(tok.text for tok in toks[i + 3:stop])
            self.tu.aliases[alias] = rhs
        return stop + 1

    def _parse_enum(self, i, end, ns, cls):
        toks = self.tokens
        k = i + 1
        if k < end and toks[k].kind == ID and toks[k].text in ("class", "struct"):
            k += 1
        if k >= end or toks[k].kind != ID:
            stop, _ = self._find_stmt_end(i, end)
            return stop + 1
        name = toks[k].text
        line = toks[k].line
        k += 1
        while k < end and toks[k].text != "{" and toks[k].text != ";":
            k += 1
        if k >= end or toks[k].text == ";":
            return k + 1
        close = self._match(k)
        enumerators = []
        expect = True
        d = k + 1
        while d < close:
            t = toks[d]
            if expect and t.kind == ID:
                enumerators.append(t.text)
                expect = False
            elif t.text == ",":
                expect = True
            elif t.text in ("(", "{", "["):
                d = self._match(d)
            d += 1
        qparts = ns + ([cls.qname.rsplit("::", 1)[-1]] if cls else []) + [name]
        self.tu.enums.append(EnumDef(
            qname="::".join(qparts), file=self.tu.path, line=line,
            enumerators=enumerators))
        k = close + 1
        while k < end and toks[k].text != ";":
            k += 1
        return k + 1

    def _is_class_def(self, i):
        """True for `class X ... {`, false for forward decls, variable
        declarations of class type, and elaborated return types."""
        toks = self.tokens
        k = i + 1
        while k < len(toks) and (toks[k].kind == ID or
                                 toks[k].text in ("::", "<", ">", ",")):
            if toks[k].text == "<":
                depth = 0
                while k < len(toks):
                    if toks[k].text == "<":
                        depth += 1
                    elif toks[k].text in (">", ">>"):
                        depth -= 1 if toks[k].text == ">" else 2
                        if depth <= 0:
                            break
                    k += 1
            k += 1
        if k >= len(toks):
            return False
        if toks[k].text == "{":
            return True
        if toks[k].text == ":":  # base clause
            return True
        return False

    def _parse_class(self, i, end, ns, cls):
        toks = self.tokens
        k = i + 1
        # The class name is the LAST identifier before `{`, `:`, `<`,
        # or `;` — attribute macros (EXIST_SCOPED_CAPABILITY,
        # EXIST_CAPABILITY("m"), alignas(...)) precede it.
        name = None
        name_at = None
        while k < end and toks[k].text not in ("{", ":", ";", "<"):
            if toks[k].kind == ID:
                if k + 1 < end and toks[k + 1].text == "(":
                    k = self._match(k + 1) + 1  # macro(...) attribute
                    continue
                if toks[k].text not in ("final", "alignas"):
                    name = toks[k].text
                    name_at = k
            k += 1
        if name is not None:
            k = name_at
        if name is None:
            stop, _ = self._find_stmt_end(i, end)
            return stop + 1
        line = toks[k].line
        k += 1
        while k < end and toks[k].text not in ("{", ";"):
            if toks[k].text in ("(", "["):
                k = self._match(k)
            k += 1
        if k >= end or toks[k].text == ";":
            return k + 1
        close = self._match(k)
        outer = cls.qname.rsplit("::", 1)[-1] if cls else None
        qparts = ns + ([c for c in (cls.qname.split("::")[-1],)]
                       if cls else []) + [name]
        # Qualified name: namespace + lexically enclosing classes.
        if cls:
            qname = cls.qname + "::" + name
        else:
            qname = "::".join(ns + [name]) if ns else name
        info = ClassInfo(qname=qname, file=self.tu.path, line=line)
        self.tu.classes.append(info)
        self._parse_scope(k + 1, close, ns, info)
        k = close + 1
        while k < end and toks[k].text != ";":
            k += 1
        return k + 1

    # -- declarations -------------------------------------------------------

    def _parse_declaration(self, i, end, ns, cls):
        """Dispatch one declaration starting at i; returns the index
        just past it."""
        toks = self.tokens
        head_end, kind = self._find_stmt_end(i, end)
        if kind == "}":
            return head_end + 1
        if kind == "eof":
            return end

        # Find a function declarator: the first depth-0 `(` preceded
        # by an identifier (or operator) outside template angles.
        paren, name_start, name_end = self._find_declarator(i, head_end)
        if paren is not None:
            rparen = self._match(paren)
            body, decl_end = self._after_params(rparen + 1, end)
            if body is not None:
                fn = self._make_function(i, name_start, name_end, ns, cls)
                close = self._match(body)
                self._parse_params(fn, paren + 1, rparen)
                _BodyParser(self, fn, cls).parse(body + 1, close)
                self.tu.functions.append(fn)
                if cls is not None:
                    cls.methods.append(fn.qname)
                return close + 1
            if decl_end is not None:
                # Declaration without body (prototype / = default).
                if cls is not None:
                    name = "".join(
                        t.text for t in toks[name_start:name_end])
                    cls.methods.append(cls.qname + "::" + name)
                return decl_end + 1

        if kind == "{":
            # Braced initializer inside a declaration, e.g.
            # `Mutex mu_{rank, "name"};` — consume the brace group and
            # continue to the statement's `;`.
            close = self._match(head_end)
            stmt_end = close + 1
            while stmt_end < end and toks[stmt_end].text != ";":
                if toks[stmt_end].text in ("{", "(", "["):
                    stmt_end = self._match(stmt_end)
                stmt_end += 1
            self._parse_member_decl(i, stmt_end, head_end, ns, cls)
            return stmt_end + 1

        # Plain `... ;` declaration.
        self._parse_member_decl(i, head_end, None, ns, cls)
        return head_end + 1

    def _find_declarator(self, i, head_end):
        """Locate a function declarator's parameter `(` within the
        head.  Returns (paren_index, name_start, name_end) or
        (None, None, None)."""
        toks = self.tokens
        angle = 0
        k = i
        while k < head_end:
            t = toks[k]
            if t.text == "<" and k > i and toks[k - 1].kind == ID:
                angle += 1
            elif t.text == ">" and angle > 0:
                angle -= 1
            elif t.text == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t.text == "(" and angle == 0:
                # Preceded by an identifier (or operator...)?
                p = k - 1
                if p >= i and toks[p].kind == ID:
                    if toks[p].text in KEYWORDS or \
                            toks[p].text in ANNOT_MACROS or \
                            toks[p].text.startswith("EXIST_"):
                        k = self._match(k) + 1
                        continue
                    # Collect qualified name backwards: ID (:: ID)*
                    name_end = k
                    ns_start = p
                    while ns_start - 2 >= i and \
                            toks[ns_start - 1].text == "::" and \
                            toks[ns_start - 2].kind == ID:
                        ns_start -= 2
                    if ns_start - 1 >= i and toks[ns_start - 1].text == "~":
                        ns_start -= 1
                    return k, ns_start, name_end
                if p >= i and toks[p].kind == PUNCT and p - 1 >= i and \
                        toks[p - 1].kind == ID and \
                        toks[p - 1].text == "operator":
                    return k, p - 1, k
                k = self._match(k) + 1
                continue
            k += 1
        return None, None, None

    def _after_params(self, k, end):
        """After a param list: find the function body `{`, or the end
        of a body-less declaration.  Returns (body_index|None,
        decl_end|None)."""
        toks = self.tokens
        while k < end:
            t = toks[k]
            if t.kind == ID and (t.text in POST_PAREN_OK or
                                 t.text.startswith("EXIST_")):
                k += 1
                if k < end and toks[k].text == "(":
                    k = self._match(k) + 1
                continue
            if t.text == "->":  # trailing return type
                k += 1
                while k < end and (toks[k].kind == ID or
                                   toks[k].text in ("::", "<", ">", "*",
                                                    "&", ",", ">>")):
                    k += 1
                continue
            if t.text == ":":  # ctor init list
                k += 1
                while k < end:
                    # init item: name, then (...) or {...}
                    while k < end and (toks[k].kind == ID or
                                       toks[k].text in ("::", "<", ">",
                                                        ">>")):
                        k += 1
                    if k < end and toks[k].text in ("(", "{"):
                        k = self._match(k) + 1
                    if k < end and toks[k].text == ",":
                        k += 1
                        continue
                    break
                continue
            if t.text == "{":
                return k, None
            if t.text == ";":
                return None, k
            if t.text == "=":  # = default / = delete / = 0
                while k < end and toks[k].text != ";":
                    k += 1
                return None, k
            # Unexpected: not a function after all.
            return None, None
        return None, None

    def _make_function(self, head_start, name_start, name_end, ns, cls):
        toks = self.tokens
        name = "".join(t.text for t in toks[name_start:name_end])
        if cls is not None:
            qname = cls.qname + "::" + name
            owner = cls.qname
        elif "::" in name:
            # Out-of-line member definition inside a namespace block:
            # prepend the namespace so the qname matches the in-class
            # declaration's (`exist::ThreadPool::submit`).
            qname = "::".join(ns + [name]) if ns else name
            owner = qname.rsplit("::", 1)[0]
        else:
            qname = "::".join(ns + [name]) if ns else name
            owner = ""
        ret = [t.text for t in toks[head_start:name_start]
               if t.kind == ID and t.text not in SPECIFIERS]
        returns_value = bool(ret) and ret[0] != "void"
        return FunctionInfo(
            qname=qname, file=self.tu.path,
            line=toks[name_start].line, cls=owner,
            returns_value=returns_value)

    def _parse_params(self, fn, i, end):
        """Record parameter names/types as locals."""
        toks = self.tokens
        depth = 0
        item_start = i
        k = i
        while k <= end:
            at_end = k == end
            t = toks[k] if not at_end else None
            if not at_end and t.text in ("(", "<", "[", "{"):
                if t.text == "<":
                    depth += 1
                    k += 1
                    continue
                k = self._match(k) + 1 if t.text != "<" else k + 1
                continue
            if not at_end and t.text in (">", ">>"):
                depth -= 1 if t.text == ">" else 2
                k += 1
                continue
            if at_end or (t.text == "," and depth <= 0):
                seg = toks[item_start:k]
                # name = last ID (before any default `= ...`)
                cut = len(seg)
                for j, s in enumerate(seg):
                    if s.text == "=":
                        cut = j
                        break
                ids = [s for s in seg[:cut] if s.kind == ID]
                if len(ids) >= 2:
                    pname = ids[-1].text
                    ptype = "".join(s.text for s in seg[:cut]
                                    if s is not ids[-1])
                    fn.local_types[pname] = ptype
                item_start = k + 1
            k += 1

    def _parse_member_decl(self, i, stmt_end, init_brace, ns, cls):
        """Variable/member declaration: detect mutexes, guarded
        members, condvars, callback slots, aliases of interest."""
        toks = self.tokens
        seg = toks[i:stmt_end]
        if not seg:
            return
        texts = [t.text for t in seg]
        if texts[0] in ("typedef", "friend", "using"):
            return

        is_static = "static" in texts
        is_const = "const" in texts and "constexpr" not in texts
        # `constexpr` members are compile-time: never guarded state.
        if "constexpr" in texts or "consteval" in texts:
            return

        guarded_by = ""
        pt_guarded_by = ""
        annot_at = None
        for j, t in enumerate(seg):
            if t.kind == ID and t.text in ANNOT_MACROS and \
                    j + 1 < len(seg) and seg[j + 1].text == "(":
                close = match_brace(seg, j + 1)
                arg = "".join(s.text for s in seg[j + 2:close])
                arg = arg.split(".")[-1].split(">")[-1].lstrip("-")
                if t.text == "EXIST_GUARDED_BY":
                    guarded_by = arg
                else:
                    pt_guarded_by = arg
                if annot_at is None:
                    annot_at = j

        # Find the declared name: the last identifier before `=`,
        # the annotation macro, the init `{`, `[`, or end.
        cut = len(seg)
        depth = 0
        for j, t in enumerate(seg):
            if t.text in ("(",):
                close = match_brace(seg, j)
                if close >= len(seg):
                    break
            if t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth -= 1 if t.text == ">" else 2
            elif depth <= 0 and t.text in ("=", "[", "{"):
                cut = j
                break
            elif t.kind == ID and t.text in ANNOT_MACROS:
                cut = j
                break
        ids = [t for t in seg[:cut] if t.kind == ID and
               t.text not in SPECIFIERS and not t.text.startswith("EXIST_")]
        if not ids:
            return
        name_tok = ids[-1]
        name = name_tok.text
        type_ids = [t.text for t in ids[:-1]]
        type_text = "".join(
            t.text for t in seg[:cut]
            if t is not name_tok and t.kind in (ID, PUNCT) and
            t.text not in SPECIFIERS)

        # A `Mutex &mu_;` member references a mutex declared (and
        # ranked) elsewhere; it is not a declaration site.
        is_ref = any(t.text == "&" for t in seg[:cut])
        is_mutex = bool(type_ids) and type_ids[-1] == "Mutex" and \
            not is_ref
        is_condvar = bool(type_ids) and type_ids[-1] == "CondVar"

        if is_mutex:
            init = texts
            rank = UNRANKED
            rank_token = ""
            for j, x in enumerate(texts):
                if x in LOCK_RANKS:
                    rank = LOCK_RANKS[x]
                    rank_token = x
                    break
            label = ""
            for t in seg:
                if t.kind == STR and len(t.text) > 2:
                    label = t.text.strip('"')
                    break
            decl = MutexDecl(
                owner=cls.qname if cls else "::".join(ns) or "<file>",
                name=name, rank=rank, rank_token=rank_token,
                label=label, file=self.tu.path, line=name_tok.line)
            if cls is not None:
                cls.mutexes.append(decl)
            else:
                self.tu.mutex_decls.append(decl)
            return

        if cls is None:
            return

        rtype = type_text
        is_func_type = "function" in rtype or "Fn" in rtype or \
            "Callback" in rtype or \
            "function" in self.tu.aliases.get(rtype, "")
        cls.members.append(Member(
            name=name, type_text=type_text, guarded_by=guarded_by,
            pt_guarded_by=pt_guarded_by,
            is_atomic="atomic" in type_ids or "atomic" in type_text,
            is_const=is_const, is_static=is_static,
            is_condvar=is_condvar,
            is_unordered="unordered_map" in type_text or
                         "unordered_set" in type_text or
                         "unordered_multimap" in type_text or
                         "unordered_multiset" in type_text,
            is_func_type=is_func_type, line=name_tok.line))

    def new_lambda_name(self, parent_qname, line):
        self._lambda_counter += 1
        return f"{parent_qname}::<lambda:{line}:{self._lambda_counter}>"


class _BodyParser:
    """Parses one function body (or lambda body) token range."""

    def __init__(self, owner: _Parser, fn: FunctionInfo,
                 cls: ClassInfo | None):
        self.p = owner
        self.fn = fn
        self.cls = cls
        self.held: list[str] = []          # mutex tails currently held
        self.block_stack: list[list] = []  # per-{} list of scoped tails
        self.iter_stack: list[tuple] = []  # (IterSite, loop_close_index)

    def parse(self, i, end):
        toks = self.p.tokens
        self.block_stack.append([])
        k = i
        while k < end:
            t = toks[k]
            if t.kind == PREPROC:
                k += 1
                continue
            if t.kind == PUNCT:
                if t.text == "{":
                    self.block_stack.append([])
                    k += 1
                    continue
                if t.text == "}":
                    if self.block_stack:
                        for tail in self.block_stack.pop():
                            if tail in self.held:
                                self.held.remove(tail)
                    while self.iter_stack and self.iter_stack[-1][1] <= k:
                        self.iter_stack.pop()
                    k += 1
                    continue
                if t.text in ("++", "--") and k + 1 < end and \
                        toks[k + 1].kind == ID:
                    self._record_write(toks[k + 1].text, toks[k + 1].line)
                    k += 2
                    continue
                k += 1
                continue
            if t.kind != ID:
                k += 1
                continue

            if t.text == "for" and k + 1 < end and toks[k + 1].text == "(":
                k = self._parse_for(k, end)
                continue
            if t.text == "return":
                k = self._parse_return(k, end)
                continue
            if t.text == "MutexLock" and k + 2 < end and \
                    toks[k + 1].kind == ID and toks[k + 2].text == "(":
                k = self._parse_scoped_lock(k, end)
                continue
            if t.text == "static" and k + 1 < end and \
                    toks[k + 1].kind == ID and toks[k + 1].text == "Mutex":
                k = self._parse_static_mutex(k, end)
                continue

            # Enum-style mentions A::kFoo.
            if (k + 2 < end and toks[k + 1].text == "::"
                    and toks[k + 2].kind == ID
                    and toks[k + 2].text.startswith("k")
                    and not (k + 3 < end and toks[k + 3].text == "(")):
                self.fn.enum_mentions.append(EnumMention(
                    enum=t.text, enumerator=toks[k + 2].text,
                    line=t.line))
                k += 3
                continue

            # Call expression?  current ID followed by `(`.
            if k + 1 < end and toks[k + 1].text == "(" and \
                    t.text not in KEYWORDS and \
                    not t.text.startswith("EXIST_"):
                k = self._parse_call(k, end)
                continue

            # Local declaration / assignment / write detection is
            # handled opportunistically below.
            if k + 1 < end and toks[k + 1].kind == PUNCT and \
                    toks[k + 1].text in ASSIGN_OPS and \
                    toks[k + 1].text == "=" and k + 2 < end and \
                    toks[k + 2].text == "=":
                k += 3  # `==` comparison split weirdly; skip
                continue
            if k + 1 < end and toks[k + 1].kind == PUNCT and \
                    toks[k + 1].text in ASSIGN_OPS:
                self._record_write(t.text, t.line)
                # Lambda on the RHS.  `slot_ = [..]` wires a callback
                # slot; `auto fn = [..]` (any declaration) is a plain
                # local binding and must stay function-scoped, or every
                # `x.fn(...)` in the program would resolve to it.
                k2 = k + 2
                if k2 < end and toks[k2].text == "[":
                    prev = toks[k - 1] if k > 0 else None
                    is_decl = prev is not None and (
                        prev.kind == ID or prev.text in (">", "&", "*"))
                    lam = self._parse_lambda(
                        k2, end, context="",
                        reg_slot="" if is_decl else self._chain_tail(k))
                    if lam is not None:
                        if is_decl:
                            self.fn.local_types[t.text] = \
                                "@lambda:" + self.last_lambda_name
                        k = lam
                        continue
                if k2 + 2 < end and toks[k2].kind == ID and \
                        toks[k2].text == "std" and \
                        self.p.tokens[k2 + 2].text == "move":
                    # slot = std::move(x): forwarding registration.
                    close = self.p._match(k2 + 3)
                    inner = [s for s in toks[k2 + 4:close] if s.kind == ID]
                    if inner and inner[0].text in self.fn.local_types:
                        self.p.tu.callback_regs.append(CallbackReg(
                            slot=self._chain_tail(k),
                            target="@fwd:" +
                                   self.fn.qname.rsplit("::", 1)[-1],
                            file=self.p.tu.path, line=t.line))
                k += 2
                continue
            if k + 1 < end and toks[k + 1].text in ("++", "--"):
                self._record_write(t.text, t.line)
                k += 2
                continue

            self._maybe_local_decl(k, end)
            k += 1
        if self.block_stack:
            self.block_stack.pop()
        return end

    # -- statement pieces ---------------------------------------------------

    def _chain_tail(self, k):
        """The written member for a chain ending at token k (e.g. for
        `ep.deliver` returns `deliver`)."""
        return self.p.tokens[k].text

    def _chain_start(self, k):
        """Walk back over `a.b->c::d` chains; returns start index."""
        toks = self.p.tokens
        s = k
        while s - 2 >= 0 and toks[s - 1].kind == PUNCT and \
                toks[s - 1].text in (".", "->", "::") and \
                toks[s - 2].kind == ID:
            s -= 2
        # allow (*x).y style: stop at parens
        return s

    def _chain_text(self, s, k):
        return "".join(t.text for t in self.p.tokens[s:k + 1])

    def _record_write(self, member, line, via_call=""):
        self.fn.writes.append(WriteSite(
            member=member, line=line, held=list(self.held),
            via_call=via_call))

    def _maybe_local_decl(self, k, end):
        """Detect `Type name = ...` / `Type &name = ...` local
        declarations to feed local_types (for object-type
        resolution)."""
        toks = self.p.tokens
        # pattern: ID[::ID|<...>]* [&|*]* ID (=|{|;)
        j = k
        type_ids = []
        while j < end:
            t = toks[j]
            if t.kind == ID and t.text not in KEYWORDS:
                type_ids.append(t.text)
                j += 1
                if j < end and toks[j].text == "<":
                    depth = 0
                    while j < end:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text in (">", ">>"):
                            depth -= 1 if toks[j].text == ">" else 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                continue
            if t.text in ("::",):
                j += 1
                continue
            if t.text in ("&", "*"):
                j += 1
                continue
            break
        if len(type_ids) >= 2 and j - 1 >= 0 and j < end and \
                toks[j].text in ("=", "{", ";") and \
                toks[j - 1].kind == ID:
            name = type_ids[-1]
            ty = "".join(x for x in type_ids[:-1] if x not in SPECIFIERS)
            if ty and ty not in ("auto",):
                self.fn.local_types.setdefault(name, ty)

    def _parse_for(self, k, end):
        toks = self.p.tokens
        lparen = k + 1
        rparen = self.p._match(lparen)
        # Range-for: a depth-1 `:` that is not `::`.
        colon = None
        d = lparen + 1
        while d < rparen:
            t = toks[d]
            if t.text in ("(", "[", "{"):
                d = self.p._match(d)
            elif t.text == ":":
                colon = d
                break
            d += 1
        if colon is not None:
            container = "".join(t.text for t in toks[colon + 1:rparen])
            tail_idx = rparen - 1
            tail = toks[tail_idx].text if toks[tail_idx].kind == ID else \
                container
            # The loop variable is a local.
            seg = toks[lparen + 1:colon]
            ids = [t for t in seg if t.kind == ID and
                   t.text not in SPECIFIERS and t.text not in KEYWORDS]
            if len(ids) >= 2:
                self.fn.local_types.setdefault(
                    ids[-1].text,
                    "".join(t.text for t in seg if t is not ids[-1]
                            and t.kind in (ID, PUNCT)))
            # Loop body extent.
            if rparen + 1 < end and toks[rparen + 1].text == "{":
                close = self.p._match(rparen + 1)
            else:
                close, _ = self.p._find_stmt_end(rparen + 1, end)
            site = IterSite(container=container, line=toks[k].line)
            # Only iterations whose order can matter are kept; the
            # check decides unorderedness via the type index.
            self.fn.iters.append(site)
            self.iter_stack.append((site, close))
        return k + 1

    def _parse_return(self, k, end):
        toks = self.p.tokens
        stop = k + 1
        while stop < end and toks[stop].text != ";":
            if toks[stop].text in ("(", "{", "["):
                stop = self.p._match(stop)
            stop += 1
        idents = [t.text for t in toks[k + 1:stop] if t.kind == ID and
                  t.text not in KEYWORDS]
        if idents:
            self.fn.returned_idents.extend(idents[:4])
        if stop > k + 1:
            self.fn.returns_value = True
        return k + 1  # reparse the expression for calls

    def _parse_scoped_lock(self, k, end):
        toks = self.p.tokens
        lparen = k + 2
        rparen = self.p._match(lparen)
        expr = "".join(t.text for t in toks[lparen + 1:rparen])
        tail = self._expr_tail(lparen + 1, rparen)
        self.fn.lock_ops.append(LockOp(
            op="scoped", target=tail, target_expr=expr,
            line=toks[k].line, held=list(self.held)))
        self.held.append(tail)
        if self.block_stack:
            self.block_stack[-1].append(tail)
        return rparen + 1

    def _expr_tail(self, i, end):
        toks = self.p.tokens
        ids = [t.text for t in toks[i:end] if t.kind == ID]
        return ids[-1] if ids else ""

    def _parse_static_mutex(self, k, end):
        toks = self.p.tokens
        # static Mutex NAME ( ... );  or  { ... };
        if k + 2 >= end or toks[k + 2].kind != ID:
            return k + 1
        name = toks[k + 2].text
        stop, _ = self.p._find_stmt_end(k, end)
        texts = [t.text for t in toks[k:stop]]
        rank = UNRANKED
        rank_token = ""
        for x in texts:
            if x in LOCK_RANKS:
                rank = LOCK_RANKS[x]
                rank_token = x
                break
        label = ""
        for t in toks[k:stop]:
            if t.kind == STR and len(t.text) > 2:
                label = t.text.strip('"')
                break
        self.p.tu.mutex_decls.append(MutexDecl(
            owner=self.fn.qname, name=name, rank=rank,
            rank_token=rank_token, label=label, file=self.p.tu.path,
            line=toks[k].line))
        # The `( ... )` initializer may contain a brace for
        # `{ ... }` init; skip the whole statement.
        return stop + 1

    def _parse_call(self, k, end):
        """Handle `<chain>(args)` at the ID token preceding `(`."""
        toks = self.p.tokens
        start = self._chain_start(k)
        callee = self._chain_text(start, k)
        tail = toks[k].text
        lparen = k + 1
        rparen = self.p._match(lparen)
        line = toks[k].line

        # Lock primitives.
        if tail == "lock" and start != k:
            target = self._member_of_chain(start, k)
            self.fn.lock_ops.append(LockOp(
                op="acquire", target=target, target_expr=callee,
                line=line, held=list(self.held)))
            self.held.append(target)
            return rparen + 1
        if tail == "unlock" and start != k:
            target = self._member_of_chain(start, k)
            if target in self.held:
                self.held.remove(target)
            self.fn.lock_ops.append(LockOp(
                op="release", target=target, target_expr=callee,
                line=line, held=list(self.held)))
            return rparen + 1
        if tail == "wait":
            arg_ids = [t.text for t in toks[lparen + 1:rparen]
                       if t.kind == ID]
            if arg_ids:
                self.fn.lock_ops.append(LockOp(
                    op="wait", target=arg_ids[-1], target_expr=callee,
                    line=line, held=list(self.held)))
                self.fn.blocks.append(BlockOp(
                    kind="condvar-wait", detail=callee, line=line))
            else:
                self.fn.blocks.append(BlockOp(
                    kind="future-wait", detail=callee, line=line))
            return rparen + 1
        if tail in BLOCKING_TAILS:
            self.fn.blocks.append(BlockOp(
                kind=BLOCKING_TAILS[tail], detail=callee, line=line))
            # fall through: also record as a call (for the graph)

        if tail == "sort":
            arg_ids = [t.text for t in toks[lparen + 1:rparen]
                       if t.kind == ID]
            self.fn.sorted_idents.extend(arg_ids[:4])

        # Mutating member call => member write.
        if tail in MUTATING_TAILS and start != k:
            member = self._member_of_chain(start, k)
            if member:
                self._record_write(member, line, via_call=tail)

        site = CallSite(callee=callee, line=line, held=list(self.held))
        if self.iter_stack and tail in SINK_TAILS:
            it = self.iter_stack[-1][0]
            it.sink_calls.append(callee)
            if not it.sink_line:
                it.sink_line = line
        if self.iter_stack and tail in ("push_back", "emplace_back",
                                        "insert", "emplace"):
            it = self.iter_stack[-1][0]
            if start != k:
                it.collects_into = self._member_of_chain(start, k)
        self.fn.calls.append(site)

        # Scan args: lambda literals, nested calls, enum mentions.
        ctx = CONTEXT_SINKS.get(tail, "")
        if tail in THREAD_SPAWN_TAILS:
            ctx = CTX_POOL
        reg = "" if (ctx or tail in NOT_A_REGISTRATION) else tail
        d = lparen + 1
        while d < rparen:
            t = toks[d]
            if t.text in ("{",):
                d = self.p._match(d) + 1
                continue
            if t.text == "[" and self._looks_like_lambda(d):
                nd = self._parse_lambda(d, rparen, context=ctx,
                                        reg_slot=reg,
                                        call_site=site)
                if nd is not None:
                    d = nd
                    continue
                d = self.p._match(d) + 1
                continue
            if t.kind == ID:
                if d + 1 < rparen and toks[d + 1].text == "(" and \
                        t.text not in KEYWORDS and \
                        not t.text.startswith("EXIST_"):
                    d = self._parse_call(d, rparen)
                    continue
                if (d + 2 < rparen and toks[d + 1].text == "::"
                        and toks[d + 2].kind == ID
                        and toks[d + 2].text.startswith("k")
                        and not (d + 3 < rparen and
                                 toks[d + 3].text == "(")):
                    self.fn.enum_mentions.append(EnumMention(
                        enum=t.text, enumerator=toks[d + 2].text,
                        line=t.line))
                    d += 3
                    continue
            d += 1
        return rparen + 1

    def _member_of_chain(self, start, k):
        """`d.tasks.push_back` -> tasks; `mu_.lock` -> mu_."""
        toks = self.p.tokens
        p = k - 2
        if p >= start and toks[p].kind == ID:
            return toks[p].text
        return toks[start].text if toks[start].kind == ID else ""

    def _looks_like_lambda(self, d):
        toks = self.p.tokens
        close = self.p._match(d)
        if close >= len(toks) - 1:
            return False
        nxt = toks[close + 1].text
        return nxt in ("(", "{") or nxt == "mutable" or nxt == "->"

    def _parse_lambda(self, d, limit, context, reg_slot="",
                      call_site=None):
        """Parse `[caps](params) specs { body }`; returns index past
        the lambda or None if it isn't one."""
        toks = self.p.tokens
        cap_close = self.p._match(d)
        k = cap_close + 1
        params = (None, None)
        if k < len(toks) and toks[k].text == "(":
            rp = self.p._match(k)
            params = (k + 1, rp)
            k = rp + 1
        while k < len(toks) and (
                (toks[k].kind == ID and (toks[k].text in POST_PAREN_OK or
                                         toks[k].text == "mutable")) or
                toks[k].text == "->"):
            if toks[k].text == "->":
                k += 1
                while k < len(toks) and (toks[k].kind == ID or
                                         toks[k].text in ("::", "<", ">",
                                                          "*", "&")):
                    k += 1
                continue
            k += 1
        if k >= len(toks) or toks[k].text != "{":
            return None
        body_close = self.p._match(k)
        name = self.p.new_lambda_name(self.fn.qname, toks[d].line)
        self.last_lambda_name = name
        lam = FunctionInfo(
            qname=name, file=self.p.tu.path, line=toks[d].line,
            cls=self.fn.cls, context=context, is_lambda=True)
        # Captured locals keep their types for resolution.
        lam.local_types.update(self.fn.local_types)
        if params[0] is not None:
            self.p._parse_params(lam, params[0], params[1])
        sub = _BodyParser(self.p, lam, self.cls)
        sub.held = list(self.held) if context == "" else []
        sub.parse(k + 1, body_close)
        self.p.tu.functions.append(lam)
        if call_site is not None:
            call_site.lambda_args.append(name)
        if reg_slot:
            self.p.tu.callback_regs.append(CallbackReg(
                slot=reg_slot, target=name, file=self.p.tu.path,
                line=toks[d].line))
        return body_close + 1
