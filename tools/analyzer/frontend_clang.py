"""Clang AST-dump frontend.

Lowers `clang -Xclang -ast-dump=json` output into the same
`ast_model.TranslationUnit` fact schema as the native frontend.  The
JSON dumps themselves are produced per file and cached by the driver
exactly like native facts (keyed by source-content hash), so warm
runs invoke clang zero times.

Scope: this frontend is the *cross-check* lowering — it extracts the
declaration-level facts a compiler is authoritative about (class
inventory, members and their thread-safety attributes, exist::Mutex
sites with their LockRank initializers, enum definitions, enumerator
references inside function bodies, direct call edges) and leaves the
statement-level facts (RAII lock scopes, lambda contexts, taint) to
the native frontend, which is the CI gate.  Where both frontends see
the same fact kind, the driver's `--frontend clang` run must agree
with the native run or the divergence itself is the bug report.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import tempfile

from ast_model import (
    LOCK_RANKS, UNRANKED,
    CallSite, ClassInfo, EnumDef, EnumMention, FunctionInfo, Member,
    MutexDecl, TranslationUnit,
)

FRONTEND_VERSION = 1

_CLANG_CANDIDATES = ("clang++", "clang++-18", "clang++-17", "clang++-16",
                     "clang++-15", "clang++-14", "clang")


def clang_binary() -> str | None:
    for name in _CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def clang_available() -> bool:
    return clang_binary() is not None


def _dump_ast(rel_path: str, text: str) -> dict | None:
    clang = clang_binary()
    if clang is None:
        return None
    # Repo root is two levels above this file's directory.
    root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    suffix = ".cc" if not rel_path.endswith((".h", ".hpp")) else ".cc"
    with tempfile.NamedTemporaryFile(
            "w", suffix=suffix, delete=False, encoding="utf-8") as tf:
        tf.write(text)
        tmp = tf.name
    try:
        proc = subprocess.run(
            [clang, "-std=c++17", "-fsyntax-only",
             "-I", root, "-I", os.path.join(root, "src"),
             "-Wno-everything",
             "-Xclang", "-ast-dump=json", tmp],
            capture_output=True, text=True, timeout=120)
        if not proc.stdout:
            return None
        return json.loads(proc.stdout)
    except (subprocess.SubprocessError, json.JSONDecodeError, OSError):
        return None
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class _Lowerer:
    def __init__(self, rel_path: str):
        self.tu = TranslationUnit(path=rel_path)
        self.cls_stack: list[ClassInfo] = []
        self.fn_stack: list[FunctionInfo] = []
        self.ns_stack: list[str] = []

    # The dump interleaves nodes from included headers; only nodes
    # without an external "file" location belong to this TU's file.
    @staticmethod
    def _foreign(node) -> bool:
        loc = node.get("loc", {}) or {}
        f = loc.get("file") or (loc.get("includedFrom") or {}).get("file")
        return bool(f) and "/usr/" in str(f)

    def walk(self, node):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        handler = getattr(self, "_on_" + kind, None)
        if handler is not None and not self._foreign(node):
            handler(node)
            return  # handlers recurse themselves as needed
        for child in node.get("inner", []) or []:
            self.walk(child)

    def _walk_children(self, node):
        for child in node.get("inner", []) or []:
            self.walk(child)

    def _qname(self, name: str) -> str:
        parts = self.ns_stack + \
            [c.qname.rsplit("::", 1)[-1] for c in self.cls_stack] + [name]
        return "::".join(p for p in parts if p)

    def _line(self, node) -> int:
        loc = node.get("loc", {}) or {}
        return int(loc.get("line", 0) or
                   (node.get("range", {}).get("begin", {}) or {})
                   .get("line", 0) or 0)

    # -- declarations ---------------------------------------------------

    def _on_NamespaceDecl(self, node):
        self.ns_stack.append(node.get("name", ""))
        self._walk_children(node)
        self.ns_stack.pop()

    def _on_CXXRecordDecl(self, node):
        if not node.get("completeDefinition") or not node.get("name"):
            self._walk_children(node)
            return
        info = ClassInfo(qname=self._qname(node["name"]),
                         file=self.tu.path, line=self._line(node))
        self.tu.classes.append(info)
        self.cls_stack.append(info)
        self._walk_children(node)
        self.cls_stack.pop()

    def _on_EnumDecl(self, node):
        if not node.get("name"):
            return
        enumerators = [c.get("name", "")
                       for c in node.get("inner", []) or []
                       if c.get("kind") == "EnumConstantDecl"]
        self.tu.enums.append(EnumDef(
            qname=self._qname(node["name"]), file=self.tu.path,
            line=self._line(node), enumerators=enumerators))

    def _on_FieldDecl(self, node):
        if not self.cls_stack or not node.get("name"):
            return
        cls = self.cls_stack[-1]
        qual = (node.get("type", {}) or {}).get("qualType", "")
        name = node["name"]
        if qual.endswith("Mutex") or "::Mutex" in qual:
            rank, rank_token, label = UNRANKED, "", ""
            for tok, val in LOCK_RANKS.items():
                if self._subtree_mentions(node, tok):
                    rank, rank_token = val, tok
                    break
            cls.mutexes.append(MutexDecl(
                owner=cls.qname, name=name, rank=rank,
                rank_token=rank_token, label=label,
                file=self.tu.path, line=self._line(node)))
            return
        guarded = ""
        for child in node.get("inner", []) or []:
            if child.get("kind") == "GuardedByAttr":
                guarded = "?"  # spelled arg not in the JSON dump
        cls.members.append(Member(
            name=name, type_text=qual, guarded_by=guarded,
            pt_guarded_by="",
            is_atomic="atomic" in qual,
            is_const=qual.startswith("const "),
            is_static=False,
            is_condvar="CondVar" in qual or "condition_variable" in qual,
            is_unordered="unordered_" in qual,
            is_func_type="function<" in qual,
            line=self._line(node)))

    def _on_FunctionDecl(self, node):
        self._function(node)

    def _on_CXXMethodDecl(self, node):
        self._function(node)

    def _on_CXXConstructorDecl(self, node):
        self._function(node)

    def _function(self, node):
        name = node.get("name", "")
        if not name:
            return
        has_body = any(c.get("kind") == "CompoundStmt"
                       for c in node.get("inner", []) or [])
        if not has_body:
            if self.cls_stack:
                self.cls_stack[-1].methods.append(self._qname(name))
            return
        fn = FunctionInfo(
            qname=self._qname(name), file=self.tu.path,
            line=self._line(node),
            cls=self.cls_stack[-1].qname if self.cls_stack else "")
        self.fn_stack.append(fn)
        self._walk_children(node)
        self.fn_stack.pop()
        self.tu.functions.append(fn)
        if self.cls_stack:
            self.cls_stack[-1].methods.append(fn.qname)

    # -- statements (only inside a function) ----------------------------

    def _on_DeclRefExpr(self, node):
        if not self.fn_stack:
            return
        ref = node.get("referencedDecl", {}) or {}
        if ref.get("kind") == "EnumConstantDecl":
            enum = (ref.get("type", {}) or {}).get("qualType", "")
            self.fn_stack[-1].enum_mentions.append(EnumMention(
                enum=enum.rsplit("::", 1)[-1],
                enumerator=ref.get("name", ""),
                line=self._line(node)))
        elif ref.get("kind") in ("FunctionDecl", "CXXMethodDecl"):
            self.fn_stack[-1].calls.append(CallSite(
                callee=ref.get("name", ""), line=self._line(node)))

    def _subtree_mentions(self, node, name: str) -> bool:
        if isinstance(node, dict):
            if node.get("name") == name or \
                    (node.get("referencedDecl", {}) or {}) \
                    .get("name") == name:
                return True
            return any(self._subtree_mentions(c, name)
                       for c in node.get("inner", []) or [])
        return False


def parse_file(rel_path: str, text: str) -> TranslationUnit:
    ast = _dump_ast(rel_path, text)
    if ast is None:
        # Degrade to an empty TU; the driver reports clang problems
        # at startup, and an empty TU only under-approximates.
        return TranslationUnit(path=rel_path)
    low = _Lowerer(rel_path)
    low.walk(ast)
    return low.tu
