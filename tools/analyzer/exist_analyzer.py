#!/usr/bin/env python3
"""exist-analyzer: whole-program static analysis for the EXIST tree.

Five project-specific checks over a shared whole-program index
(DESIGN.md §13):

  lock-rank    static acquires-while-holding graph vs. the LockRank
               hierarchy; unranked mutexes; wrapper bypasses
  guarded-by   members written in critical sections must carry
               EXIST_GUARDED_BY
  event-block  no blocking primitive reachable from EventQueue
               callbacks or CommitLog sequenced actions
  determinism  unordered-container iteration order must not taint
               serialized output (alias- and dataflow-aware successor
               of determinism_lint.py's regex rules)
  exhaustive   every MsgType / WAL RecordType enumerator handled in
               every protocol role (encode/decode/name/replay)

Driving: the file list comes from compile_commands.json when present
(plus headers), else a glob of src/.  Per-file lowered facts are
cached keyed by source-content hash, so warm runs re-parse nothing.

Frontends: `--frontend native` (default) lowers with the bundled
structural parser and needs no toolchain; `--frontend clang` lowers
from `clang -Xclang -ast-dump=json` dumps (cached the same way) where
clang is installed, and is cross-checked against the native facts.

Suppression uses the same two layers as determinism_lint.py, and the
overlapping rule ids are spelled identically, so one waiver covers
both tools:
  * inline `// lint-allow: <rule>` on (or directly above) the line;
  * a `path:rule` entry in tools/analysis_allow.txt with a
    justification comment.

Exit status: 0 = clean, 1 = non-allowlisted findings, 2 = usage or
internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ast_model import Finding, Index, TranslationUnit  # noqa: E402
import frontend_native  # noqa: E402
from checks import ALL_CHECKS  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

CACHE_SCHEMA = 1  # bump to invalidate every cached fact file

CHECK_FROM_FIXTURE = {
    "lock_rank": "lock-rank",
    "guarded_by": "guarded-by",
    "event_block": "event-block",
    "determinism": "determinism",
    "exhaustive": "exhaustive",
}


def rel_path(path: str, root: str) -> str:
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


# --- file discovery --------------------------------------------------------

def discover_files(root: str, compdb_path: str | None,
                   roots: list[str]) -> list[str]:
    """Absolute paths of every file to lower, sorted."""
    files: set[str] = set()
    exts = (".cc", ".cpp", ".h", ".hpp")
    if compdb_path and os.path.exists(compdb_path):
        try:
            with open(compdb_path, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = entry.get("file", "")
                    if not os.path.isabs(p):
                        p = os.path.join(entry.get("directory", root), p)
                    p = os.path.realpath(p)
                    if any(os.path.abspath(r) == os.path.commonpath(
                            [os.path.abspath(r), p]) for r in roots):
                        files.add(p)
        except (json.JSONDecodeError, OSError) as e:
            sys.stderr.write(f"exist-analyzer: unreadable compdb "
                             f"{compdb_path}: {e}\n")
    for r in roots:
        if os.path.isfile(r):
            files.add(os.path.abspath(r))
            continue
        for dirpath, _dirs, names in os.walk(r):
            for name in sorted(names):
                if name.endswith(exts):
                    files.add(os.path.join(dirpath, name))
    return sorted(files)


# --- fact cache ------------------------------------------------------------

class FactCache:
    def __init__(self, cache_dir: str | None, frontend_name: str,
                 frontend_version: int):
        self.dir = cache_dir
        self.tag = f"{frontend_name}-v{frontend_version}-s{CACHE_SCHEMA}"
        self.hits = 0
        self.misses = 0
        if self.dir:
            os.makedirs(self.dir, exist_ok=True)

    def key(self, source: bytes) -> str:
        h = hashlib.sha256()
        h.update(self.tag.encode())
        h.update(b"\x00")
        h.update(source)
        return h.hexdigest()

    def load(self, key: str) -> TranslationUnit | None:
        if not self.dir:
            return None
        path = os.path.join(self.dir, key + ".json")
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as f:
                tu = TranslationUnit.from_dict(json.load(f))
            self.hits += 1
            return tu
        except (json.JSONDecodeError, OSError, KeyError, TypeError):
            return None  # corrupt entry: fall through to re-parse

    def store(self, key: str, tu: TranslationUnit):
        if not self.dir:
            return
        path = os.path.join(self.dir, key + ".json")
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(tu.to_dict(), f, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            pass  # cache is best-effort


def lower_files(files: list[str], root: str, cache: FactCache,
                frontend) -> list[TranslationUnit]:
    tus = []
    for path in files:
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError as e:
            sys.stderr.write(f"exist-analyzer: cannot read {path}: {e}\n")
            continue
        key = cache.key(raw)
        tu = cache.load(key)
        if tu is None:
            cache.misses += 1
            text = raw.decode("utf-8", errors="replace")
            tu = frontend.parse_file(rel_path(path, root), text)
            cache.store(key, tu)
        tus.append(tu)
    return tus


# --- allowlisting ----------------------------------------------------------

def load_allowlist(path: str) -> set[tuple]:
    allow: set[tuple] = set()
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw in f:
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            if ":" not in entry:
                sys.stderr.write(
                    f"exist-analyzer: malformed allowlist entry "
                    f"{entry!r} (want path:rule)\n")
                sys.exit(2)
            allow.add(tuple(entry.rsplit(":", 1)))
    return allow


def apply_suppressions(findings: list[Finding], index: Index,
                       allowlist: set[tuple]) -> None:
    for fd in findings:
        if (fd.file, fd.rule) in allowlist or \
                (fd.file, fd.check) in allowlist:
            fd.allowlisted = True
            continue
        lines = index.allow_lines.get(fd.file, {})
        for ln in (fd.line, fd.line - 1):
            rules = lines.get(ln)
            if rules and (fd.rule in rules or fd.check in rules):
                fd.allowlisted = True
                break


# --- analysis --------------------------------------------------------------

def run_checks(index: Index, which: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for name in which:
        findings.extend(ALL_CHECKS[name](index))
    findings.sort(key=lambda f: (f.file, f.line, f.check, f.rule))
    return findings


def self_test(root: str, which: list[str]) -> int:
    """Every bad_<check>_*.cc fixture must trip its check; every
    good_<check>_*.cc must stay clean for that check.  Each fixture is
    analyzed as its own single-file program so fixtures cannot mask
    each other."""
    fdir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
    names = sorted(n for n in os.listdir(fdir) if n.endswith(".cc")) \
        if os.path.isdir(fdir) else []
    if not names:
        sys.stderr.write(f"exist-analyzer: no fixtures under {fdir}\n")
        return 2
    failures = []
    covered: dict[str, set] = {c: set() for c in ALL_CHECKS}
    for name in names:
        stem = name.rsplit(".", 1)[0]
        kind, rest = (stem.split("_", 1) + [""])[:2]
        check = next((c for k, c in CHECK_FROM_FIXTURE.items()
                      if rest.startswith(k)), None)
        if kind not in ("bad", "good") or check is None:
            failures.append(f"{name}: want bad|good_<check>_<n>.cc with "
                            f"check in {sorted(CHECK_FROM_FIXTURE)}")
            continue
        path = os.path.join(fdir, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        tu = frontend_native.parse_file(rel_path(path, root), text)
        index = Index([tu])
        findings = run_checks(index, which)
        apply_suppressions(findings, index, set())
        hits = [fd for fd in findings
                if fd.check == check and not fd.allowlisted]
        if kind == "bad" and not hits:
            got = sorted({f"{fd.check}/{fd.rule}" for fd in findings})
            failures.append(f"{name}: expected a {check} finding, got "
                            f"{got or 'nothing'}")
        elif kind == "good" and hits:
            failures.append(
                f"{name}: expected clean for {check}, got " +
                "; ".join(f"{fd.rule}@{fd.line}: {fd.message}"
                          for fd in hits))
        else:
            covered[check].add(kind)
    for check, kinds in covered.items():
        missing = {"bad", "good"} - kinds
        if missing:
            failures.append(f"check {check}: no {'/'.join(sorted(missing))} "
                            "fixture present")
    if failures:
        for f in failures:
            sys.stderr.write(f"exist-analyzer self-test FAIL: {f}\n")
        return 1
    print(f"exist-analyzer self-test: {len(names)} fixtures OK "
          f"({len(covered)} checks, bad+good each)")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description="whole-program static analysis for the EXIST tree")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to analyze (default: src/)")
    ap.add_argument("--root", default=REPO_ROOT,
                    help="repository root (default: auto)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json "
                         "(default: <root>/compile_commands.json)")
    ap.add_argument("--cache-dir", default=None,
                    help="fact-cache directory keyed by source content "
                         "hash (default: <root>/.analyzer-cache)")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--allowlist", default=None,
                    help="default: <root>/tools/analysis_allow.txt")
    ap.add_argument("--json", metavar="OUT", default=None,
                    help="also write the findings as a JSON artifact")
    ap.add_argument("--frontend", choices=("native", "clang"),
                    default="native")
    ap.add_argument("--checks", default=",".join(ALL_CHECKS),
                    help="comma-separated subset of: " +
                         ", ".join(ALL_CHECKS))
    ap.add_argument("--self-test", action="store_true",
                    help="verify every check against its pass/fail "
                         "fixtures under tools/analyzer/fixtures/")
    ap.add_argument("--show-allowlisted", action="store_true")
    ap.add_argument("--stats", action="store_true")
    args = ap.parse_args(argv)

    which = [c.strip() for c in args.checks.split(",") if c.strip()]
    for c in which:
        if c not in ALL_CHECKS:
            sys.stderr.write(f"exist-analyzer: unknown check {c!r} "
                             f"(have {', '.join(ALL_CHECKS)})\n")
            return 2

    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root, which)

    if args.frontend == "clang":
        import frontend_clang
        frontend = frontend_clang
        if not frontend_clang.clang_available():
            sys.stderr.write(
                "exist-analyzer: --frontend clang requested but no "
                "clang binary found; install clang or use the native "
                "frontend\n")
            return 2
    else:
        frontend = frontend_native

    roots = [os.path.abspath(p) for p in args.paths] or \
        [os.path.join(root, "src")]
    for r in roots:
        if not os.path.exists(r):
            sys.stderr.write(f"exist-analyzer: no such path: {r}\n")
            return 2
    compdb = args.compdb or os.path.join(root, "compile_commands.json")
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.path.join(root, ".analyzer-cache"))
    allow_path = args.allowlist or os.path.join(
        root, "tools", "analysis_allow.txt")

    t0 = time.monotonic()
    files = discover_files(root, compdb, roots)
    cache = FactCache(cache_dir, args.frontend,
                      frontend.FRONTEND_VERSION)
    tus = lower_files(files, root, cache, frontend)
    t_lower = time.monotonic() - t0
    index = Index(tus)
    findings = run_checks(index, which)
    apply_suppressions(findings, index, load_allowlist(allow_path))
    t_total = time.monotonic() - t0

    live = [f for f in findings if not f.allowlisted]
    waived = [f for f in findings if f.allowlisted]
    shown = findings if args.show_allowlisted else live
    for fd in shown:
        tag = " (allowlisted)" if fd.allowlisted else ""
        print(f"{fd.file}:{fd.line}: [{fd.check}/{fd.rule}]{tag} "
              f"{fd.message}")

    if args.json:
        artifact = {
            "schema": CACHE_SCHEMA,
            "frontend": args.frontend,
            "files": len(files),
            "checks": which,
            "findings": [f.to_dict() for f in findings],
            "summary": {"live": len(live), "allowlisted": len(waived)},
            "timing": {"lower_s": round(t_lower, 3),
                       "total_s": round(t_total, 3)},
            "cache": {"hits": cache.hits, "misses": cache.misses},
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=2)

    if args.stats:
        print(f"exist-analyzer: {len(files)} files, cache "
              f"{cache.hits} hit / {cache.misses} miss, lowered in "
              f"{t_lower:.2f}s, total {t_total:.2f}s")

    if live:
        sys.stderr.write(
            f"exist-analyzer: {len(live)} finding(s) "
            f"({len(waived)} allowlisted); fix them, add an inline "
            "`// lint-allow: <rule>` with a justification, or extend "
            "tools/analysis_allow.txt\n")
        return 1
    print(f"exist-analyzer: clean — {len(files)} files, "
          f"{len(waived)} allowlisted finding(s), {t_total:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
