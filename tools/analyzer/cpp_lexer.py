"""Token-level C++ lexer for the exist-analyzer frontends.

Produces a flat token stream with accurate line numbers, plus a
per-line comment map (inline `lint-allow:` suppressions live in
comments, so they must survive lexing even though the parser proper
never sees comment tokens).

This is *not* a general C++ lexer; it is exact for the constructs the
repo uses: // and /* */ comments, string/char literals with escapes,
raw strings R"tag(...)tag", digraph-free punctuation, preprocessor
lines (captured whole as PREPROC tokens so include graphs can be
built), and line continuations.  Anything it cannot classify becomes a
single-character PUNCT token, which keeps the downstream parser total:
unknown syntax degrades to "no facts extracted", never to a crash.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"
CHR = "chr"
PUNCT = "punct"
PREPROC = "preproc"

_ID_START = re.compile(r"[A-Za-z_]")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F'.pP+\-]+|[0-9][0-9a-fA-F'.eEuUlLfFpPxXbB+\-]*)")
_RAW_STR_RE = re.compile(r'R"([^()\s\\]{0,16})\(')

# Multi-character punctuators, longest first so maximal munch holds.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
]


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self):  # compact debugging aid
        return f"{self.kind}:{self.text}@{self.line}"


def lex(source: str):
    """Return (tokens, comments) where comments maps line -> text of
    every comment that starts on that line (concatenated)."""
    tokens: list[Token] = []
    comments: dict[int, str] = {}
    i, n = 0, len(source)
    line = 1

    def note_comment(ln: int, text: str):
        comments[ln] = comments.get(ln, "") + text

    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and source[i + 1] == "\n":
            line += 1
            i += 2
            continue
        # Comments.
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            if end < 0:
                end = n
            note_comment(line, source[i:end])
            i = end
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                end = n
            text = source[i : end + 2]
            note_comment(line, text)
            line += text.count("\n")
            i = end + 2
            continue
        # Preprocessor line (only when # begins the logical line).
        if c == "#":
            j = i
            while j < n:
                if source[j] == "\\" and j + 1 < n and source[j + 1] == "\n":
                    j += 2
                    continue
                if source[j] == "\n":
                    break
                j += 1
            text = source[i:j]
            tokens.append(Token(PREPROC, text, line))
            line += text.count("\n")
            i = j
            continue
        # Raw strings.
        if c == "R" and (m := _RAW_STR_RE.match(source, i)):
            tag = m.group(1)
            close = ")" + tag + '"'
            end = source.find(close, m.end())
            if end < 0:
                end = n
            text = source[i : end + len(close)]
            tokens.append(Token(STR, '""', line))
            line += text.count("\n")
            i = end + len(close)
            continue
        # Strings / chars (with escape handling).
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == c:
                    j += 1
                    break
                if source[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            text = source[i:j]
            tokens.append(Token(STR if c == '"' else CHR, text, line))
            i = j
            continue
        # Identifiers / keywords.
        if _ID_START.match(c):
            m = _ID_RE.match(source, i)
            tokens.append(Token(ID, m.group(0), line))
            i = m.end()
            continue
        # Numbers.
        if c.isdigit():
            m = _NUM_RE.match(source, i)
            tokens.append(Token(NUM, m.group(0), line))
            i = m.end()
            continue
        # Punctuation, maximal munch.
        for p in _PUNCTS:
            if source.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            tokens.append(Token(PUNCT, c, line))
            i += 1
    return tokens, comments


def match_brace(tokens, open_index):
    """Index of the PUNCT token closing the bracket at open_index
    (handles (), {}, []).  Returns len(tokens) when unbalanced."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    open_ch = tokens[open_index].text
    close_ch = pairs[open_ch]
    depth = 0
    for k in range(open_index, len(tokens)):
        t = tokens[k]
        if t.kind != PUNCT:
            continue
        if t.text == open_ch:
            depth += 1
        elif t.text == close_ch:
            depth -= 1
            if depth == 0:
                return k
    return len(tokens)
