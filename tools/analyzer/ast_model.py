"""The shared AST-index model every frontend lowers into.

A frontend (native lexer/parser or Clang AST-dump) turns one source
file into a `TranslationUnit` of *facts*: classes with their members
and annotations, functions with their lock operations, calls, writes,
blocking operations and container iterations, enums with their
enumerators, and callback registrations.  The `Index` merges the
per-file facts into one whole-program view and resolves the call
graph; the check passes only ever see the index, so they are frontend
agnostic by construction.

Everything here is plain dataclasses that round-trip through
`to_dict`/`from_dict`, which is what makes the per-file fact cache
(keyed by source-content hash) possible.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from dataclasses import dataclass, field

# --- Lock ranks (mirrors src/util/lock_order.h) ---------------------------

LOCK_RANKS = {
    "kPool": 0,
    "kDecodeQueue": 10,
    "kDecodeCore": 20,
    "kAgentQueue": 25,
    "kCommitLog": 30,
    "kIngest": 35,
    "kShard": 40,
    "kWal": 45,
    "kStore": 50,
    "kMetrics": 60,
    "kObs": 70,
    "kLeaf": 100,
}
RANK_NAMES = {v: k for k, v in LOCK_RANKS.items()}
UNRANKED = -1  # declaration did not name a LockRank

# Method tails too generic to resolve by name alone: std-container /
# std-algorithm vocabulary.  A call through one of these only
# resolves when the receiver's type is known exactly; the
# unique-program-wide fallback would otherwise wire every
# `keys.insert(...)` to whatever class happens to define `insert`.
GENERIC_TAILS = {
    "push_back", "emplace_back", "pop_back", "push", "pop", "insert",
    "emplace", "erase", "clear", "resize", "assign", "reserve", "swap",
    "begin", "end", "rbegin", "rend", "size", "empty", "find", "count",
    "at", "front", "back", "data", "get", "reset", "release", "str",
    "c_str", "substr", "append", "sort", "store", "load", "exchange",
    "fetch_add", "fetch_sub", "first", "second", "value", "emplace_hint",
    "push_front", "pop_front", "length", "compare", "contains",
}

# Contexts a function (usually a lambda) can be rooted in.
CTX_EVENT = "event-callback"    # sim/EventQueue::schedule{,After}
CTX_COMMIT = "commit-action"    # CommitLog::commit sequenced action
CTX_POOL = "pool-task"          # ThreadPool::submit / parallelFor


@dataclass
class MutexDecl:
    """One `exist::Mutex` site: a class member, a static local, or a
    namespace-scope variable."""
    owner: str        # qualified class name, or "<file>" for locals
    name: str         # member/variable identifier
    rank: int         # LOCK_RANKS value, or UNRANKED
    rank_token: str   # the spelled enumerator ("kShard"), "" if none
    label: str        # the string name passed to the constructor
    file: str
    line: int

    @property
    def key(self) -> str:
        return f"{self.owner}::{self.name}"


@dataclass
class Member:
    """A non-mutex data member of a class."""
    name: str
    type_text: str
    guarded_by: str   # argument of EXIST_GUARDED_BY, "" if none
    pt_guarded_by: str
    is_atomic: bool
    is_const: bool
    is_static: bool
    is_condvar: bool
    is_unordered: bool  # declared type resolves to std::unordered_*
    is_func_type: bool  # std::function-ish: a dynamic callback slot
    line: int


@dataclass
class ClassInfo:
    qname: str
    file: str
    line: int
    members: list[Member] = field(default_factory=list)
    mutexes: list[MutexDecl] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)  # qualified names

    @property
    def lock_bearing(self) -> bool:
        return bool(self.mutexes)


@dataclass
class LockOp:
    """A lock acquisition/release/wait inside a function body."""
    op: str          # "acquire" | "release" | "wait" | "scoped"
    target: str      # normalized mutex expression tail (member name)
    target_expr: str # the raw spelled expression
    line: int
    held: list[str] = field(default_factory=list)  # mutex keys held here
    scope_end: int = 0  # for "scoped": last line of the RAII scope


@dataclass
class CallSite:
    callee: str       # spelled callee ("obj.method", "ns::fn", "fn")
    line: int
    held: list[str] = field(default_factory=list)
    lambda_args: list[str] = field(default_factory=list)  # synthetic fn names
    in_unordered_loop: str = ""  # container expr if inside such a loop


@dataclass
class WriteSite:
    member: str       # member identifier written ("foo_", "stats")
    line: int
    held: list[str] = field(default_factory=list)
    via_call: str = ""  # mutating method name if write was e.g. push_back


@dataclass
class BlockOp:
    """A potentially blocking primitive: condvar wait, sleep, flush,
    join, future wait."""
    kind: str         # "condvar-wait" | "sleep" | "flush" | "join" | "future-wait"
    detail: str
    line: int


@dataclass
class IterSite:
    """Iteration over an unordered container."""
    container: str    # spelled container expression
    line: int
    sink_calls: list[str] = field(default_factory=list)  # sink callees in loop body
    sink_line: int = 0
    collects_into: str = ""  # local the loop pushes into, if any


@dataclass
class EnumMention:
    enum: str         # enum tail name ("MsgType", "RecordType")
    enumerator: str
    line: int


@dataclass
class FunctionInfo:
    qname: str        # "Class::method", "ns::fn", or synthetic lambda name
    file: str
    line: int
    cls: str = ""     # owning class qname ("" for free functions)
    context: str = "" # CTX_* for synthetic lambda roots
    is_lambda: bool = False
    returns_value: bool = False
    calls: list[CallSite] = field(default_factory=list)
    lock_ops: list[LockOp] = field(default_factory=list)
    writes: list[WriteSite] = field(default_factory=list)
    blocks: list[BlockOp] = field(default_factory=list)
    iters: list[IterSite] = field(default_factory=list)
    enum_mentions: list[EnumMention] = field(default_factory=list)
    returned_idents: list[str] = field(default_factory=list)
    sorted_idents: list[str] = field(default_factory=list)
    local_types: dict[str, str] = field(default_factory=dict)


@dataclass
class EnumDef:
    qname: str        # qualified tail ("net::MsgType")
    file: str
    line: int
    enumerators: list[str] = field(default_factory=list)


@dataclass
class CallbackReg:
    """`slot = lambda` / `slot = fn` where slot is a std::function-ish
    member: the dynamic-dispatch edge a static call graph would miss."""
    slot: str         # member identifier ("deliver", "on_region")
    target: str       # lambda synthetic name or function name
    file: str
    line: int


@dataclass
class TranslationUnit:
    """All facts extracted from one source file."""
    path: str         # repo-relative, forward slashes
    classes: list[ClassInfo] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    enums: list[EnumDef] = field(default_factory=list)
    mutex_decls: list[MutexDecl] = field(default_factory=list)  # non-member
    callback_regs: list[CallbackReg] = field(default_factory=list)
    raw_sync_uses: list[tuple] = field(default_factory=list)  # (token, line)
    allow_lines: dict = field(default_factory=dict)  # line -> {rules}
    aliases: dict[str, str] = field(default_factory=dict)  # using X = Y

    def to_dict(self):
        d = dataclasses.asdict(self)
        d["allow_lines"] = {str(k): sorted(v)
                            for k, v in self.allow_lines.items()}
        return d

    @staticmethod
    def from_dict(d):
        tu = TranslationUnit(path=d["path"])
        tu.classes = [
            ClassInfo(
                qname=c["qname"], file=c["file"], line=c["line"],
                members=[Member(**m) for m in c["members"]],
                mutexes=[MutexDecl(**m) for m in c["mutexes"]],
                methods=list(c["methods"]),
            )
            for c in d["classes"]
        ]
        tu.functions = [_fn_from_dict(f) for f in d["functions"]]
        tu.enums = [EnumDef(**e) for e in d["enums"]]
        tu.mutex_decls = [MutexDecl(**m) for m in d["mutex_decls"]]
        tu.callback_regs = [CallbackReg(**r) for r in d["callback_regs"]]
        tu.raw_sync_uses = [tuple(u) for u in d["raw_sync_uses"]]
        tu.allow_lines = {int(k): set(v) for k, v in d["allow_lines"].items()}
        tu.aliases = dict(d["aliases"])
        return tu


def _fn_from_dict(f):
    fn = FunctionInfo(
        qname=f["qname"], file=f["file"], line=f["line"], cls=f["cls"],
        context=f["context"], is_lambda=f["is_lambda"],
        returns_value=f["returns_value"],
    )
    fn.calls = [CallSite(**c) for c in f["calls"]]
    fn.lock_ops = [LockOp(**o) for o in f["lock_ops"]]
    fn.writes = [WriteSite(**w) for w in f["writes"]]
    fn.blocks = [BlockOp(**b) for b in f["blocks"]]
    fn.iters = [IterSite(**i) for i in f["iters"]]
    fn.enum_mentions = [EnumMention(**e) for e in f["enum_mentions"]]
    fn.returned_idents = list(f["returned_idents"])
    fn.sorted_idents = list(f["sorted_idents"])
    fn.local_types = dict(f["local_types"])
    return fn


@dataclass
class Finding:
    check: str        # check module name ("lock-rank", ...)
    rule: str         # specific rule id (shared with determinism_lint)
    file: str
    line: int
    message: str
    function: str = ""
    allowlisted: bool = False

    def to_dict(self):
        return dataclasses.asdict(self)


# --- Whole-program index ---------------------------------------------------

class Index:
    """Merged whole-program view + call-graph resolution."""

    def __init__(self, tus: list[TranslationUnit]):
        self.tus = tus
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.enums: dict[str, EnumDef] = {}
        self.mutex_by_key: dict[str, MutexDecl] = {}
        self.mutex_by_name: dict[str, list[MutexDecl]] = defaultdict(list)
        self.methods_by_tail: dict[str, list[str]] = defaultdict(list)
        self.callback_targets: dict[str, list[str]] = defaultdict(list)
        self.aliases: dict[str, str] = {}
        self.allow_lines: dict[str, dict] = {}

        for tu in tus:
            self.allow_lines[tu.path] = tu.allow_lines
            self.aliases.update(tu.aliases)
            for c in tu.classes:
                # Later definitions of the same class merge (e.g. a
                # nested struct seen in both .h and a fixture).
                if c.qname in self.classes:
                    base = self.classes[c.qname]
                    base.members.extend(c.members)
                    base.mutexes.extend(c.mutexes)
                    base.methods.extend(c.methods)
                else:
                    self.classes[c.qname] = c
            for e in tu.enums:
                self.enums.setdefault(e.qname, e)
                self.enums.setdefault(e.qname.rsplit("::", 1)[-1], e)
            for r in tu.callback_regs:
                self.callback_targets[r.slot].append(r.target)

        # Expand forwarding registrations: `slot_ = std::move(param)`
        # inside a setter records "@fwd:<setter>", meaning the slot's
        # real targets are the lambdas registered at the setter's call
        # sites.  Fixpoint handles setter -> setter chains.
        for _ in range(4):
            changed = False
            for slot, targets in list(self.callback_targets.items()):
                for t in list(targets):
                    if not t.startswith("@fwd:"):
                        continue
                    for fwd in self.callback_targets.get(t[5:], []):
                        if not fwd.startswith("@fwd:") and \
                                fwd not in targets:
                            targets.append(fwd)
                            changed = True
            if not changed:
                break
        for slot in self.callback_targets:
            self.callback_targets[slot] = [
                t for t in self.callback_targets[slot]
                if not t.startswith("@fwd:")]

        for tu in tus:
            for f in tu.functions:
                if f.qname in self.functions:
                    # Overload / redefinition: union the effects so the
                    # analysis stays sound (may-analysis).
                    self._merge_fn(self.functions[f.qname], f)
                else:
                    self.functions[f.qname] = f
                tail = f.qname.rsplit("::", 1)[-1]
                self.methods_by_tail[tail].append(f.qname)

        for c in self.classes.values():
            for m in c.mutexes:
                self.mutex_by_key[m.key] = m
                self.mutex_by_name[m.name].append(m)
        for tu in tus:
            for m in tu.mutex_decls:
                self.mutex_by_key[m.key] = m
                self.mutex_by_name[m.name].append(m)

        self._resolved: dict[tuple, list[str]] = {}

    @staticmethod
    def _merge_fn(into: FunctionInfo, other: FunctionInfo):
        into.calls.extend(other.calls)
        into.lock_ops.extend(other.lock_ops)
        into.writes.extend(other.writes)
        into.blocks.extend(other.blocks)
        into.iters.extend(other.iters)
        into.enum_mentions.extend(other.enum_mentions)
        into.returned_idents.extend(other.returned_idents)
        into.sorted_idents.extend(other.sorted_idents)
        into.local_types.update(other.local_types)
        into.returns_value = into.returns_value or other.returns_value

    # -- type / mutex resolution -------------------------------------------

    def resolve_type(self, type_text: str) -> str:
        """Follow `using` aliases to a base type string."""
        seen = set()
        t = type_text
        while t in self.aliases and t not in seen:
            seen.add(t)
            t = self.aliases[t]
        return t

    def is_unordered_type(self, type_text: str) -> bool:
        t = self.resolve_type(type_text)
        return "unordered_map" in t or "unordered_set" in t or \
               "unordered_multimap" in t or "unordered_multiset" in t

    def mutex_for_expr(self, expr_tail: str, cls: str) -> MutexDecl | None:
        """Resolve a lock expression's trailing member name to its
        declaration: prefer the enclosing class, else a unique global
        match."""
        if cls:
            # Walk the class, its lexically nested structs, and its
            # enclosing classes (namespace-qualification tolerant).
            for qname, c in self.classes.items():
                if _cls_related(cls, qname):
                    for m in c.mutexes:
                        if m.name == expr_tail:
                            return m
        cands = self.mutex_by_name.get(expr_tail, [])
        if len(cands) == 1:
            return cands[0]
        if cands:
            ranks = {m.rank for m in cands}
            if len(ranks) == 1:  # ambiguous owner, unambiguous rank
                return cands[0]
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, site: CallSite, caller: FunctionInfo) -> list[str]:
        key = (caller.qname, site.callee, site.line)
        if key in self._resolved:
            return self._resolved[key]
        out = self._resolve_call_uncached(site, caller)
        self._resolved[key] = out
        return out

    def _resolve_call_uncached(self, site, caller):
        callee = site.callee
        out: list[str] = []
        # Qualified call "A::b" / "ns::fn".
        if "::" in callee:
            if callee in self.functions:
                return [callee]
            tail = callee.rsplit("::", 1)[-1]
            for qn in self.methods_by_tail.get(tail, []):
                if qn == callee or qn.endswith("::" + callee):
                    out.append(qn)
            return out
        # Member call "obj.method" / "obj->method".
        for sep in (".", "->"):
            if sep in callee:
                obj, method = callee.rsplit(sep, 1)
                obj = obj.split(".")[-1].split(">")[-1].lstrip("-")
                # std::function slot member (`dep.deliver(...)`)?
                # Fan out to the registered callbacks.
                if self._is_callback_slot(method, caller):
                    return list(self.callback_targets.get(method, []))
                t = self._object_type(obj, caller)
                if t:
                    qn = f"{t}::{method}"
                    if qn in self.functions:
                        return [qn]
                    for cand in self.methods_by_tail.get(method, []):
                        if cand == qn or cand.endswith("::" + qn):
                            out.append(cand)
                    if out:
                        return out
                if method in GENERIC_TAILS:
                    return []  # too ambiguous without a receiver type
                cands = self.methods_by_tail.get(method, [])
                return cands if len(cands) == 1 else []
        # Bare call: a local lambda binding (`auto fn = [..]; fn();`)
        # shadows everything else and never escapes the function.
        lt = caller.local_types.get(callee, "")
        if lt.startswith("@lambda:"):
            tgt = lt[len("@lambda:"):]
            return [tgt] if tgt in self.functions else []
        # Same class first, then unique program-wide.
        if caller.cls:
            qn = f"{caller.cls}::{callee}"
            if qn in self.functions:
                return [qn]
            for cand in self.methods_by_tail.get(callee, []):
                if cand.startswith(caller.cls + "::"):
                    return [cand]
        # Callback slot called bare (a member std::function).
        if self._is_callback_slot(callee, caller):
            return list(self.callback_targets.get(callee, []))
        if callee in self.functions:
            return [callee]
        if callee in GENERIC_TAILS:
            return []
        cands = self.methods_by_tail.get(callee, [])
        return cands if len(cands) == 1 else []

    def _object_type(self, obj: str, caller: FunctionInfo) -> str:
        """Best-effort type of `obj` inside `caller`."""
        t = caller.local_types.get(obj, "")
        if t:
            return _strip_type(t)
        if caller.cls:
            for qname, c in self.classes.items():
                if _cls_related(caller.cls, qname):
                    for m in c.members:
                        if m.name == obj:
                            return _strip_type(m.type_text)
        if obj == "this" and caller.cls:
            return caller.cls
        return ""

    def _is_callback_slot(self, name: str, caller: FunctionInfo) -> bool:
        if not self.callback_targets.get(name):
            return False
        if caller.cls and caller.cls in self.classes:
            for m in self.classes[caller.cls].members:
                if m.name == name:
                    return m.is_func_type
        return True  # registered somewhere; treat as dynamic edge

    # -- interprocedural fixpoints ------------------------------------------

    def may_acquire(self) -> dict[str, dict[str, tuple]]:
        """For every function: {mutex_key: (rank, witness_chain)} of
        mutexes it may acquire, directly or transitively."""
        if hasattr(self, "_may_acquire"):
            return self._may_acquire
        acq: dict[str, dict[str, tuple]] = {q: {} for q in self.functions}
        for q, f in self.functions.items():
            for op in f.lock_ops:
                if op.op not in ("acquire", "scoped", "wait"):
                    continue
                decl = self.mutex_for_expr(op.target, f.cls)
                rank = decl.rank if decl else UNRANKED
                key = decl.key if decl else f"?::{op.target}"
                acq[q].setdefault(key, (rank, (q, op.line)))
        changed = True
        iters = 0
        while changed and iters < 60:
            changed = False
            iters += 1
            for q, f in self.functions.items():
                for site in f.calls:
                    for callee in self.resolve_call(site, f):
                        for key, (rank, chain) in acq.get(callee, {}).items():
                            if key not in acq[q]:
                                acq[q][key] = (rank, (q, site.line) + chain[-4:])
                                changed = True
        self._may_acquire = acq
        return acq

    def reachable_from(self, roots: list[str]) -> dict[str, tuple]:
        """BFS over the resolved call graph; returns
        {function: witness_path_tuple}."""
        seen: dict[str, tuple] = {}
        frontier = [(r, (r,)) for r in roots]
        while frontier:
            nxt = []
            for q, path in frontier:
                if q in seen or q not in self.functions:
                    continue
                seen[q] = path
                f = self.functions[q]
                for site in f.calls:
                    for callee in self.resolve_call(site, f):
                        if callee not in seen:
                            nxt.append((callee, path + (callee,)))
                    for lam in site.lambda_args:
                        # A lambda passed onward may run in-context
                        # (e.g. EventQueue::schedule from inside a
                        # callback chains the context) — except pool
                        # tasks, which run on worker threads.
                        lf = self.functions.get(lam)
                        if lf is not None and lf.context == CTX_POOL:
                            continue
                        if lam not in seen:
                            nxt.append((lam, path + (lam,)))
            frontier = nxt
        return seen


def _cls_related(cls: str, qname: str) -> bool:
    """True when `cls` names `qname`, a class enclosing it, or a class
    it encloses — tolerant of missing namespace qualification on
    either side."""
    a = "::" + cls + "::"
    b = "::" + qname + "::"
    return a in b or b in a


def _strip_type(t: str) -> str:
    """'const WorkerDeque &' / 'WorkerDeque*' -> 'WorkerDeque'."""
    t = t.replace("const", " ").replace("mutable", " ")
    t = t.replace("&", " ").replace("*", " ")
    t = t.replace("std::unique_ptr<", " ").replace("std::shared_ptr<", " ")
    t = t.replace("<", " ").replace(">", " ")
    parts = [p for p in t.split() if p not in ("struct", "class")]
    return parts[0] if parts else ""
