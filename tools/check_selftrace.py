#!/usr/bin/env python3
"""Validate an `existctl --self-trace` Chrome trace-event JSON file.

Checks the properties the observability PR promises (DESIGN.md §14):

  - the file parses as JSON with a ``traceEvents`` array;
  - at least ``--min-categories`` distinct span categories appear;
  - both clock domains are present: real-clock events on pid 1 and
    sim-clock events on pids >= 100;
  - duration events balance: every "B" has a matching "E" per
    (pid, tid), with proper nesting;
  - flow links pair up: every flow id with an "s" also has an "f";
  - process/thread metadata names the pids/tids that carry events.

Exit status 0 when all hold, 1 with a diagnostic otherwise.
"""
import argparse
import collections
import json
import sys


def fail(msg):
    print("check_selftrace: FAIL: %s" % msg, file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="self-trace JSON file")
    ap.add_argument("--min-categories", type=int, default=8)
    args = ap.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("no traceEvents array")

    cats = set()
    pids = set()
    open_stacks = collections.defaultdict(list)
    flows = collections.defaultdict(set)
    named_pids = set()
    named_tids = set()
    event_pids = set()
    event_tids = set()

    for e in events:
        ph = e.get("ph")
        pid, tid = e.get("pid"), e.get("tid")
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(pid)
            elif e.get("name") == "thread_name":
                named_tids.add((pid, tid))
            continue
        event_pids.add(pid)
        event_tids.add((pid, tid))
        if e.get("cat"):
            cats.add(e["cat"])
        pids.add(pid)
        if ph == "B":
            open_stacks[(pid, tid)].append(e.get("name"))
        elif ph == "E":
            stack = open_stacks[(pid, tid)]
            if not stack:
                return fail("unmatched E on pid=%s tid=%s" % (pid, tid))
            stack.pop()
        elif ph in ("s", "f"):
            flows[e.get("id")].add(ph)

    for key, stack in open_stacks.items():
        if stack:
            return fail("unclosed B %r on pid=%s tid=%s"
                        % (stack[-1], key[0], key[1]))
    for fid, phases in flows.items():
        if phases != {"s", "f"}:
            return fail("flow %s has only %s" % (fid, sorted(phases)))

    if len(cats) < args.min_categories:
        return fail("only %d categories (%s); need >= %d"
                    % (len(cats), ", ".join(sorted(cats)),
                       args.min_categories))
    if 1 not in pids:
        return fail("no real-clock events (pid 1)")
    if not any(isinstance(p, int) and p >= 100 for p in pids):
        return fail("no sim-clock events (pid >= 100)")
    if not event_pids <= named_pids:
        return fail("pids without process_name metadata: %s"
                    % sorted(event_pids - named_pids))
    if not event_tids <= named_tids:
        return fail("tids without thread_name metadata: %s"
                    % sorted(event_tids - named_tids))

    print("check_selftrace: OK: %d events, %d categories (%s), "
          "%d pids, flows balanced"
          % (sum(1 for e in events if e.get("ph") != "M"),
             len(cats), ", ".join(sorted(cats)), len(pids)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
